#include "faults/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace faults {
namespace {

/// One whitespace-delimited token plus its 1-based column, so errors (and
/// validate()) can point at the offending token, not just the line.
struct Tok {
  std::string text;
  int col = 0;
};

std::vector<Tok> tokenize(const std::string& line) {
  std::vector<Tok> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;  // comment to end of line
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.push_back(Tok{line.substr(start, i - start), int(start) + 1});
  }
  return out;
}

[[noreturn]] void fail(int line_no, int col, const std::string& line,
                       const std::string& why) {
  std::string where = "faults DSL line " + std::to_string(line_no);
  if (col > 0) where += " col " + std::to_string(col);
  throw std::invalid_argument(where + ": " + why + " in \"" + line + "\"");
}

double parse_double(const std::string& tok, bool* ok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  *ok = end != nullptr && *end == '\0' && end != tok.c_str();
  return v;
}

/// `host:3`, `host:*.up`, `fabric:0.down`, `worker:5`, `leaf:1`, `spine`,
/// `router:2`, `router:spine`. `link_context` decides how `leaf`/`spine`
/// resolve (router vs aggregation app).
Target parse_target(const std::string& tok, bool agg_context, bool* ok) {
  *ok = true;
  Target t;
  std::string body = tok;
  if (body.size() > 3 && body.compare(body.size() - 3, 3, ".up") == 0) {
    t.dir = LinkDir::kUp;
    body.resize(body.size() - 3);
  } else if (body.size() > 5 &&
             body.compare(body.size() - 5, 5, ".down") == 0) {
    t.dir = LinkDir::kDown;
    body.resize(body.size() - 5);
  }

  std::string kind = body, idx;
  if (const auto colon = body.find(':'); colon != std::string::npos) {
    kind = body.substr(0, colon);
    idx = body.substr(colon + 1);
  }

  if (kind == "host") t.kind = TargetKind::kHostLink;
  else if (kind == "fabric") t.kind = TargetKind::kFabricLink;
  else if (kind == "worker") t.kind = TargetKind::kWorker;
  else if (kind == "leaf")
    t.kind = agg_context ? TargetKind::kLeafAgg : TargetKind::kLeafRouter;
  else if (kind == "spine")
    t.kind = agg_context ? TargetKind::kSpineAgg : TargetKind::kSpineRouter;
  else if (kind == "router") {
    if (idx == "spine") {
      t.kind = TargetKind::kSpineRouter;
      idx.clear();
    } else {
      t.kind = TargetKind::kLeafRouter;
    }
  } else {
    *ok = false;
    return t;
  }

  if (idx.empty() || idx == "*") {
    t.index = Target::kAll;
  } else {
    char* end = nullptr;
    const long v = std::strtol(idx.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) {
      *ok = false;
      return t;
    }
    t.index = static_cast<int>(v);
  }
  return t;
}

bool is_link_target(const Target& t) {
  return t.kind == TargetKind::kHostLink || t.kind == TargetKind::kFabricLink;
}

/// Splits `key=value` tokens; returns false for anything else.
bool parse_kv(const std::string& tok, std::string* key, std::string* value) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) return false;
  *key = tok.substr(0, eq);
  *value = tok.substr(eq + 1);
  return true;
}

}  // namespace

sim::Duration parse_duration(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || end == nullptr || v < 0) {
    throw std::invalid_argument("bad duration: " + token);
  }
  const std::string unit(end);
  double scale = 0;
  if (unit == "ns") scale = 1;
  else if (unit == "us") scale = 1e3;
  else if (unit == "ms") scale = 1e6;
  else if (unit == "s") scale = 1e9;
  else throw std::invalid_argument("bad duration unit: " + token);
  return sim::Duration(static_cast<std::int64_t>(v * scale + 0.5));
}

FaultSchedule& FaultSchedule::flap(sim::Time at, Target link,
                                   sim::Duration outage) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkFlap;
  e.target = link;
  e.duration = outage;
  return add(e);
}

FaultSchedule& FaultSchedule::link_down(sim::Time at, Target link) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDown;
  e.target = link;
  return add(e);
}

FaultSchedule& FaultSchedule::link_up(sim::Time at, Target link) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkUp;
  e.target = link;
  return add(e);
}

FaultSchedule& FaultSchedule::burst_loss(sim::Time at, Target link,
                                         const net::GilbertElliott& model,
                                         sim::Duration window,
                                         std::uint64_t seed) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBurstLoss;
  e.target = link;
  e.duration = window;
  e.burst = model;
  e.seed = seed;
  return add(e);
}

FaultSchedule& FaultSchedule::iid_loss(sim::Time at, Target link,
                                       double probability,
                                       sim::Duration window,
                                       std::uint64_t seed) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kIidLoss;
  e.target = link;
  e.duration = window;
  e.probability = probability;
  e.seed = seed;
  return add(e);
}

FaultSchedule& FaultSchedule::corrupt(sim::Time at, Target link,
                                      double probability,
                                      sim::Duration window,
                                      std::uint64_t seed) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCorrupt;
  e.target = link;
  e.duration = window;
  e.probability = probability;
  e.seed = seed;
  return add(e);
}

FaultSchedule& FaultSchedule::stall(sim::Time at, Target router,
                                    sim::Duration length) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRouterStall;
  e.target = router;
  e.duration = length;
  return add(e);
}

FaultSchedule& FaultSchedule::kill(sim::Time at, Target router) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRouterKill;
  e.target = router;
  return add(e);
}

FaultSchedule& FaultSchedule::revive(sim::Time at, Target router) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRouterRevive;
  e.target = router;
  return add(e);
}

FaultSchedule& FaultSchedule::crash(sim::Time at, int worker_index,
                                    int tenant) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHostCrash;
  e.target = worker(worker_index);
  e.tenant = tenant;
  return add(e);
}

FaultSchedule& FaultSchedule::restart(sim::Time at, int worker_index,
                                      int tenant) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHostRestart;
  e.target = worker(worker_index);
  e.tenant = tenant;
  return add(e);
}

FaultSchedule& FaultSchedule::drop_buckets(sim::Time at, Target agg,
                                           std::uint8_t job_id) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBucketDrop;
  e.target = agg;
  e.job_id = job_id;
  return add(e);
}

FaultSchedule& FaultSchedule::add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

FaultSchedule FaultSchedule::parse(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks.size() < 3 || toks[0].text != "at") {
      fail(line_no, toks[0].col, line,
           "expected `at <time> <verb> <target> ...`");
    }
    sim::Time at;
    try {
      at = sim::Time() + parse_duration(toks[1].text);
    } catch (const std::invalid_argument& e) {
      fail(line_no, toks[1].col, line, e.what());
    }
    const std::string& verb = toks[2].text;
    const int verb_col = toks[2].col;
    if (toks.size() < 4) fail(line_no, verb_col, line, "missing target");
    const bool agg_context = verb == "drop-buckets";
    bool ok = false;
    const Target target = parse_target(toks[3].text, agg_context, &ok);
    if (!ok) {
      fail(line_no, toks[3].col, line, "bad target `" + toks[3].text + "`");
    }

    FaultEvent e;
    e.at = at;
    e.target = target;
    e.line = line_no;
    e.col = verb_col;
    std::size_t pos = 4;  // first parameter token

    // `<number>` right after the target = probability (loss / corrupt).
    double probability = -1;
    if (pos < toks.size()) {
      bool num_ok = false;
      const double v = parse_double(toks[pos].text, &num_ok);
      if (num_ok) {
        probability = v;
        ++pos;
      }
    }

    // Trailing params: `for <dur>`, `seed=N`, `job=N`, GE model fields.
    sim::Duration duration = sim::Duration::zero();
    bool have_duration = false;
    while (pos < toks.size()) {
      if (toks[pos].text == "for") {
        if (pos + 1 >= toks.size()) {
          fail(line_no, toks[pos].col, line, "`for` needs a time");
        }
        try {
          duration = parse_duration(toks[pos + 1].text);
        } catch (const std::invalid_argument& err) {
          fail(line_no, toks[pos + 1].col, line, err.what());
        }
        have_duration = true;
        pos += 2;
        continue;
      }
      std::string key, value;
      if (!parse_kv(toks[pos].text, &key, &value)) {
        fail(line_no, toks[pos].col, line,
             "unexpected token `" + toks[pos].text + "`");
      }
      bool num_ok = false;
      const double v = parse_double(value, &num_ok);
      if (!num_ok) {
        fail(line_no, toks[pos].col, line,
             "bad value in `" + toks[pos].text + "`");
      }
      if (key == "p_enter") e.burst.p_enter = v;
      else if (key == "p_exit") e.burst.p_exit = v;
      else if (key == "loss_good") e.burst.loss_good = v;
      else if (key == "loss_bad") e.burst.loss_bad = v;
      else if (key == "seed") e.seed = static_cast<std::uint64_t>(v);
      else if (key == "job") e.job_id = static_cast<std::uint8_t>(v);
      else if (key == "tenant") {
        if (v < 0 || v > 255) {
          fail(line_no, toks[pos].col, line,
               "tenant out of range in `" + toks[pos].text + "`");
        }
        e.tenant = static_cast<int>(v);
      }
      else {
        fail(line_no, toks[pos].col, line, "unknown parameter `" + key + "`");
      }
      ++pos;
    }
    e.duration = duration;
    e.probability = probability < 0 ? 0.0 : probability;

    if (verb == "flap") {
      e.kind = FaultKind::kLinkFlap;
      if (!have_duration) {
        fail(line_no, verb_col, line, "flap needs `for <time>`");
      }
    } else if (verb == "down") {
      e.kind = FaultKind::kLinkDown;
    } else if (verb == "up") {
      e.kind = FaultKind::kLinkUp;
    } else if (verb == "burst") {
      e.kind = FaultKind::kBurstLoss;
    } else if (verb == "loss") {
      e.kind = FaultKind::kIidLoss;
      if (probability < 0) {
        fail(line_no, verb_col, line, "loss needs a probability");
      }
    } else if (verb == "corrupt") {
      e.kind = FaultKind::kCorrupt;
      if (probability < 0) {
        fail(line_no, verb_col, line, "corrupt needs a probability");
      }
    } else if (verb == "stall") {
      e.kind = FaultKind::kRouterStall;
      if (!have_duration) {
        fail(line_no, verb_col, line, "stall needs `for <time>`");
      }
    } else if (verb == "kill") {
      e.kind = FaultKind::kRouterKill;
      if (have_duration) {
        fail(line_no, verb_col, line, "kill is permanent; use a `revive` line");
      }
    } else if (verb == "revive") {
      e.kind = FaultKind::kRouterRevive;
    } else if (verb == "crash") {
      e.kind = FaultKind::kHostCrash;
    } else if (verb == "restart") {
      e.kind = FaultKind::kHostRestart;
    } else if (verb == "drop-buckets") {
      e.kind = FaultKind::kBucketDrop;
    } else {
      fail(line_no, verb_col, line, "unknown verb `" + verb + "`");
    }

    // `tenant=` scopes a crash/restart to one tenant's worker and aliases
    // `job=` on drop-buckets (tenant id == job id, docs/jobs.md).
    if (e.tenant >= 0) {
      if (e.kind == FaultKind::kBucketDrop) {
        e.job_id = static_cast<std::uint8_t>(e.tenant);
      } else if (e.kind != FaultKind::kHostCrash &&
                 e.kind != FaultKind::kHostRestart) {
        fail(line_no, verb_col, line,
             "`tenant=` only applies to crash/restart/drop-buckets");
      }
    }

    const bool link_verb =
        e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp ||
        e.kind == FaultKind::kLinkFlap || e.kind == FaultKind::kBurstLoss ||
        e.kind == FaultKind::kIidLoss || e.kind == FaultKind::kCorrupt;
    if (link_verb && !is_link_target(e.target)) {
      fail(line_no, toks[3].col, line,
           "verb `" + verb + "` needs a link target");
    }
    if ((e.kind == FaultKind::kHostCrash ||
         e.kind == FaultKind::kHostRestart) &&
        e.target.kind != TargetKind::kWorker) {
      fail(line_no, toks[3].col, line,
           "verb `" + verb + "` needs a worker target");
    }
    if ((e.kind == FaultKind::kRouterStall ||
         e.kind == FaultKind::kRouterKill ||
         e.kind == FaultKind::kRouterRevive) &&
        e.target.kind != TargetKind::kLeafRouter &&
        e.target.kind != TargetKind::kSpineRouter) {
      fail(line_no, toks[3].col, line,
           "verb `" + verb + "` needs a router target");
    }
    schedule.add(e);
  }
  return schedule;
}

namespace {

/// Does `close` clear the fault `open` started? Same target kind and
/// instance; kAll on either side matches any instance. Crash/restart
/// additionally pair on the tenant qualifier.
bool closes(const FaultEvent& open, const FaultEvent& close) {
  if (open.target.kind != close.target.kind) return false;
  if (open.target.index != Target::kAll && close.target.index != Target::kAll &&
      open.target.index != close.target.index) {
    return false;
  }
  switch (open.kind) {
    case FaultKind::kLinkDown:
      return close.kind == FaultKind::kLinkUp;
    case FaultKind::kRouterKill:
      return close.kind == FaultKind::kRouterRevive;
    case FaultKind::kHostCrash:
      return close.kind == FaultKind::kHostRestart &&
             close.tenant == open.tenant;
    default:
      return false;
  }
}

}  // namespace

std::vector<PacketWindow> packet_windows(const FaultSchedule& schedule) {
  std::vector<PacketWindow> out;
  const auto& events = schedule.events();
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case FaultKind::kLinkFlap:
      case FaultKind::kRouterStall:
        out.push_back({ev.at, ev.at + ev.duration});
        break;
      case FaultKind::kBurstLoss:
      case FaultKind::kIidLoss:
      case FaultKind::kCorrupt:
        out.push_back({ev.at, ev.duration == sim::Duration::zero()
                                  ? sim::Time::max()
                                  : ev.at + ev.duration});
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kRouterKill:
      case FaultKind::kHostCrash: {
        // Paired fault: the earliest matching closing event at or after
        // `at` ends the window; none means it never clears.
        sim::Time end = sim::Time::max();
        for (const FaultEvent& other : events) {
          if (other.at >= ev.at && closes(ev, other) && other.at < end) {
            end = other.at;
          }
        }
        out.push_back({ev.at, end});
        break;
      }
      case FaultKind::kBucketDrop:
        out.push_back({ev.at, ev.at});  // instantaneous
        break;
      case FaultKind::kLinkUp:
      case FaultKind::kHostRestart:
      case FaultKind::kRouterRevive:
        // Closing events open no window of their own; the padding the
        // consumer applies covers the post-recovery tail.
        break;
    }
  }
  return out;
}

FaultSchedule FaultSchedule::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read fault schedule: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

namespace {

/// Exact-duration DSL spelling: the largest unit that divides `ns` evenly,
/// so parse_duration reads back the same nanosecond count.
std::string fmt_dur(std::int64_t ns) {
  std::ostringstream out;
  if (ns != 0 && ns % 1'000'000'000 == 0) out << ns / 1'000'000'000 << "s";
  else if (ns != 0 && ns % 1'000'000 == 0) out << ns / 1'000'000 << "ms";
  else if (ns != 0 && ns % 1'000 == 0) out << ns / 1'000 << "us";
  else out << ns << "ns";
  return out.str();
}

/// Shortest decimal spelling that strtod reads back to exactly `v`.
std::string fmt_prob(double v) {
  for (int prec = 6; prec <= 17; ++prec) {
    std::ostringstream os;
    os.precision(prec);
    os << v;
    if (std::strtod(os.str().c_str(), nullptr) == v) return os.str();
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string FaultSchedule::to_dsl() const {
  std::ostringstream out;
  for (const FaultEvent& e : events_) {
    out << "at " << fmt_dur(e.at.ns()) << ' ' << kind_name(e.kind) << ' '
        << target_name(e.target);
    switch (e.kind) {
      case FaultKind::kLinkFlap:
      case FaultKind::kRouterStall:
        out << " for " << fmt_dur(e.duration.ns());
        break;
      case FaultKind::kBurstLoss:
        out << " p_enter=" << fmt_prob(e.burst.p_enter)
            << " p_exit=" << fmt_prob(e.burst.p_exit)
            << " loss_good=" << fmt_prob(e.burst.loss_good)
            << " loss_bad=" << fmt_prob(e.burst.loss_bad);
        if (e.duration.ns() != 0) out << " for " << fmt_dur(e.duration.ns());
        if (e.seed != 0) out << " seed=" << e.seed;
        break;
      case FaultKind::kIidLoss:
      case FaultKind::kCorrupt:
        out << ' ' << fmt_prob(e.probability);
        if (e.duration.ns() != 0) out << " for " << fmt_dur(e.duration.ns());
        if (e.seed != 0) out << " seed=" << e.seed;
        break;
      case FaultKind::kBucketDrop:
        if (e.tenant >= 0) out << " tenant=" << e.tenant;
        else out << " job=" << int(e.job_id);
        break;
      case FaultKind::kHostCrash:
      case FaultKind::kHostRestart:
        if (e.tenant >= 0) out << " tenant=" << e.tenant;
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kRouterKill:
      case FaultKind::kRouterRevive:
        break;
    }
    out << '\n';
  }
  return out.str();
}

namespace {

[[noreturn]] void validate_fail(const FaultEvent& e, const std::string& why) {
  std::string where = "fault schedule";
  if (e.line > 0) {
    where += " line " + std::to_string(e.line);
    if (e.col > 0) where += " col " + std::to_string(e.col);
  }
  throw std::invalid_argument(where + ": " + why + " (`" + describe(e) + "`)");
}

/// Do two targets address an overlapping set of instances? kAll on either
/// side overlaps everything of the kind.
bool targets_overlap(const Target& a, const Target& b) {
  if (a.kind != b.kind) return false;
  return a.index == Target::kAll || b.index == Target::kAll ||
         a.index == b.index;
}

}  // namespace

void FaultSchedule::validate(const std::vector<int>* declared_tenants) const {
  // Time-sorted view (stable: same-time events keep schedule order, the
  // order the injector arms them in).
  std::vector<const FaultEvent*> order;
  order.reserve(events_.size());
  for (const FaultEvent& e : events_) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     return a->at < b->at;
                   });

  std::vector<const FaultEvent*> open_kills;    // routers currently killed
  std::vector<const FaultEvent*> open_crashes;  // (worker, tenant) crashed
  for (const FaultEvent* ep : order) {
    const FaultEvent& e = *ep;
    if (e.tenant >= 0 && declared_tenants != nullptr &&
        std::find(declared_tenants->begin(), declared_tenants->end(),
                  e.tenant) == declared_tenants->end()) {
      validate_fail(e, "tenant=" + std::to_string(e.tenant) +
                           " is not declared in the jobs spec");
    }
    switch (e.kind) {
      case FaultKind::kRouterKill: {
        for (const FaultEvent* open : open_kills) {
          if (targets_overlap(open->target, e.target)) {
            validate_fail(e, "kill overlaps an earlier kill of " +
                                 target_name(open->target) +
                                 " that is still open (missing revive?)");
          }
        }
        open_kills.push_back(ep);
        break;
      }
      case FaultKind::kRouterRevive: {
        bool matched = false;
        for (auto it = open_kills.begin(); it != open_kills.end();) {
          if (targets_overlap((*it)->target, e.target)) {
            matched = true;
            it = open_kills.erase(it);
          } else {
            ++it;
          }
        }
        if (!matched) {
          validate_fail(e, "revive of " + target_name(e.target) +
                               " with no kill still open");
        }
        break;
      }
      case FaultKind::kHostCrash: {
        for (const FaultEvent* open : open_crashes) {
          if (open->tenant == e.tenant &&
              targets_overlap(open->target, e.target)) {
            validate_fail(e, "crash overlaps an earlier crash of " +
                                 target_name(open->target) +
                                 " that is still open (missing restart?)");
          }
        }
        open_crashes.push_back(ep);
        break;
      }
      case FaultKind::kHostRestart: {
        bool matched = false;
        for (auto it = open_crashes.begin(); it != open_crashes.end();) {
          if ((*it)->tenant == e.tenant &&
              targets_overlap((*it)->target, e.target)) {
            matched = true;
            it = open_crashes.erase(it);
          } else {
            ++it;
          }
        }
        if (!matched) {
          validate_fail(e, "restart of " + target_name(e.target) +
                               " with no crash still open");
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace faults
