#include "faults/schedule.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace faults {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    if (tok[0] == '#') break;  // rest of line is a comment
    out.push_back(tok);
  }
  return out;
}

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  throw std::invalid_argument("faults DSL line " + std::to_string(line_no) +
                              ": " + why + " in \"" + line + "\"");
}

double parse_double(const std::string& tok, bool* ok) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  *ok = end != nullptr && *end == '\0' && end != tok.c_str();
  return v;
}

/// `host:3`, `host:*.up`, `fabric:0.down`, `worker:5`, `leaf:1`, `spine`,
/// `router:2`, `router:spine`. `link_context` decides how `leaf`/`spine`
/// resolve (router vs aggregation app).
Target parse_target(const std::string& tok, bool agg_context, bool* ok) {
  *ok = true;
  Target t;
  std::string body = tok;
  if (body.size() > 3 && body.compare(body.size() - 3, 3, ".up") == 0) {
    t.dir = LinkDir::kUp;
    body.resize(body.size() - 3);
  } else if (body.size() > 5 &&
             body.compare(body.size() - 5, 5, ".down") == 0) {
    t.dir = LinkDir::kDown;
    body.resize(body.size() - 5);
  }

  std::string kind = body, idx;
  if (const auto colon = body.find(':'); colon != std::string::npos) {
    kind = body.substr(0, colon);
    idx = body.substr(colon + 1);
  }

  if (kind == "host") t.kind = TargetKind::kHostLink;
  else if (kind == "fabric") t.kind = TargetKind::kFabricLink;
  else if (kind == "worker") t.kind = TargetKind::kWorker;
  else if (kind == "leaf")
    t.kind = agg_context ? TargetKind::kLeafAgg : TargetKind::kLeafRouter;
  else if (kind == "spine")
    t.kind = agg_context ? TargetKind::kSpineAgg : TargetKind::kSpineRouter;
  else if (kind == "router") {
    if (idx == "spine") {
      t.kind = TargetKind::kSpineRouter;
      idx.clear();
    } else {
      t.kind = TargetKind::kLeafRouter;
    }
  } else {
    *ok = false;
    return t;
  }

  if (idx.empty() || idx == "*") {
    t.index = Target::kAll;
  } else {
    char* end = nullptr;
    const long v = std::strtol(idx.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) {
      *ok = false;
      return t;
    }
    t.index = static_cast<int>(v);
  }
  return t;
}

bool is_link_target(const Target& t) {
  return t.kind == TargetKind::kHostLink || t.kind == TargetKind::kFabricLink;
}

/// Splits `key=value` tokens; returns false for anything else.
bool parse_kv(const std::string& tok, std::string* key, std::string* value) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) return false;
  *key = tok.substr(0, eq);
  *value = tok.substr(eq + 1);
  return true;
}

}  // namespace

sim::Duration parse_duration(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || end == nullptr || v < 0) {
    throw std::invalid_argument("bad duration: " + token);
  }
  const std::string unit(end);
  double scale = 0;
  if (unit == "ns") scale = 1;
  else if (unit == "us") scale = 1e3;
  else if (unit == "ms") scale = 1e6;
  else if (unit == "s") scale = 1e9;
  else throw std::invalid_argument("bad duration unit: " + token);
  return sim::Duration(static_cast<std::int64_t>(v * scale + 0.5));
}

FaultSchedule& FaultSchedule::flap(sim::Time at, Target link,
                                   sim::Duration outage) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkFlap;
  e.target = link;
  e.duration = outage;
  return add(e);
}

FaultSchedule& FaultSchedule::link_down(sim::Time at, Target link) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkDown;
  e.target = link;
  return add(e);
}

FaultSchedule& FaultSchedule::link_up(sim::Time at, Target link) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLinkUp;
  e.target = link;
  return add(e);
}

FaultSchedule& FaultSchedule::burst_loss(sim::Time at, Target link,
                                         const net::GilbertElliott& model,
                                         sim::Duration window,
                                         std::uint64_t seed) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBurstLoss;
  e.target = link;
  e.duration = window;
  e.burst = model;
  e.seed = seed;
  return add(e);
}

FaultSchedule& FaultSchedule::iid_loss(sim::Time at, Target link,
                                       double probability,
                                       sim::Duration window,
                                       std::uint64_t seed) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kIidLoss;
  e.target = link;
  e.duration = window;
  e.probability = probability;
  e.seed = seed;
  return add(e);
}

FaultSchedule& FaultSchedule::corrupt(sim::Time at, Target link,
                                      double probability,
                                      sim::Duration window,
                                      std::uint64_t seed) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCorrupt;
  e.target = link;
  e.duration = window;
  e.probability = probability;
  e.seed = seed;
  return add(e);
}

FaultSchedule& FaultSchedule::stall(sim::Time at, Target router,
                                    sim::Duration length) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRouterStall;
  e.target = router;
  e.duration = length;
  return add(e);
}

FaultSchedule& FaultSchedule::kill(sim::Time at, Target router) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRouterKill;
  e.target = router;
  return add(e);
}

FaultSchedule& FaultSchedule::revive(sim::Time at, Target router) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRouterRevive;
  e.target = router;
  return add(e);
}

FaultSchedule& FaultSchedule::crash(sim::Time at, int worker_index,
                                    int tenant) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHostCrash;
  e.target = worker(worker_index);
  e.tenant = tenant;
  return add(e);
}

FaultSchedule& FaultSchedule::restart(sim::Time at, int worker_index,
                                      int tenant) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHostRestart;
  e.target = worker(worker_index);
  e.tenant = tenant;
  return add(e);
}

FaultSchedule& FaultSchedule::drop_buckets(sim::Time at, Target agg,
                                           std::uint8_t job_id) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kBucketDrop;
  e.target = agg;
  e.job_id = job_id;
  return add(e);
}

FaultSchedule& FaultSchedule::add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

FaultSchedule FaultSchedule::parse(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks.size() < 3 || toks[0] != "at") {
      fail(line_no, line, "expected `at <time> <verb> <target> ...`");
    }
    sim::Time at;
    try {
      at = sim::Time() + parse_duration(toks[1]);
    } catch (const std::invalid_argument& e) {
      fail(line_no, line, e.what());
    }
    const std::string& verb = toks[2];
    if (toks.size() < 4) fail(line_no, line, "missing target");
    const bool agg_context = verb == "drop-buckets";
    bool ok = false;
    const Target target = parse_target(toks[3], agg_context, &ok);
    if (!ok) fail(line_no, line, "bad target `" + toks[3] + "`");

    FaultEvent e;
    e.at = at;
    e.target = target;
    std::size_t pos = 4;  // first parameter token

    // `<number>` right after the target = probability (loss / corrupt).
    double probability = -1;
    if (pos < toks.size()) {
      bool num_ok = false;
      const double v = parse_double(toks[pos], &num_ok);
      if (num_ok) {
        probability = v;
        ++pos;
      }
    }

    // Trailing params: `for <dur>`, `seed=N`, `job=N`, GE model fields.
    sim::Duration duration = sim::Duration::zero();
    bool have_duration = false;
    while (pos < toks.size()) {
      if (toks[pos] == "for") {
        if (pos + 1 >= toks.size()) fail(line_no, line, "`for` needs a time");
        try {
          duration = parse_duration(toks[pos + 1]);
        } catch (const std::invalid_argument& err) {
          fail(line_no, line, err.what());
        }
        have_duration = true;
        pos += 2;
        continue;
      }
      std::string key, value;
      if (!parse_kv(toks[pos], &key, &value)) {
        fail(line_no, line, "unexpected token `" + toks[pos] + "`");
      }
      bool num_ok = false;
      const double v = parse_double(value, &num_ok);
      if (!num_ok) fail(line_no, line, "bad value in `" + toks[pos] + "`");
      if (key == "p_enter") e.burst.p_enter = v;
      else if (key == "p_exit") e.burst.p_exit = v;
      else if (key == "loss_good") e.burst.loss_good = v;
      else if (key == "loss_bad") e.burst.loss_bad = v;
      else if (key == "seed") e.seed = static_cast<std::uint64_t>(v);
      else if (key == "job") e.job_id = static_cast<std::uint8_t>(v);
      else if (key == "tenant") {
        if (v < 0 || v > 255) {
          fail(line_no, line, "tenant out of range in `" + toks[pos] + "`");
        }
        e.tenant = static_cast<int>(v);
      }
      else fail(line_no, line, "unknown parameter `" + key + "`");
      ++pos;
    }
    e.duration = duration;
    e.probability = probability < 0 ? 0.0 : probability;

    if (verb == "flap") {
      e.kind = FaultKind::kLinkFlap;
      if (!have_duration) fail(line_no, line, "flap needs `for <time>`");
    } else if (verb == "down") {
      e.kind = FaultKind::kLinkDown;
    } else if (verb == "up") {
      e.kind = FaultKind::kLinkUp;
    } else if (verb == "burst") {
      e.kind = FaultKind::kBurstLoss;
    } else if (verb == "loss") {
      e.kind = FaultKind::kIidLoss;
      if (probability < 0) fail(line_no, line, "loss needs a probability");
    } else if (verb == "corrupt") {
      e.kind = FaultKind::kCorrupt;
      if (probability < 0) fail(line_no, line, "corrupt needs a probability");
    } else if (verb == "stall") {
      e.kind = FaultKind::kRouterStall;
      if (!have_duration) fail(line_no, line, "stall needs `for <time>`");
    } else if (verb == "kill") {
      e.kind = FaultKind::kRouterKill;
      if (have_duration) {
        fail(line_no, line, "kill is permanent; use a `revive` line");
      }
    } else if (verb == "revive") {
      e.kind = FaultKind::kRouterRevive;
    } else if (verb == "crash") {
      e.kind = FaultKind::kHostCrash;
    } else if (verb == "restart") {
      e.kind = FaultKind::kHostRestart;
    } else if (verb == "drop-buckets") {
      e.kind = FaultKind::kBucketDrop;
    } else {
      fail(line_no, line, "unknown verb `" + verb + "`");
    }

    // `tenant=` scopes a crash/restart to one tenant's worker and aliases
    // `job=` on drop-buckets (tenant id == job id, docs/jobs.md).
    if (e.tenant >= 0) {
      if (e.kind == FaultKind::kBucketDrop) {
        e.job_id = static_cast<std::uint8_t>(e.tenant);
      } else if (e.kind != FaultKind::kHostCrash &&
                 e.kind != FaultKind::kHostRestart) {
        fail(line_no, line,
             "`tenant=` only applies to crash/restart/drop-buckets");
      }
    }

    const bool link_verb =
        e.kind == FaultKind::kLinkDown || e.kind == FaultKind::kLinkUp ||
        e.kind == FaultKind::kLinkFlap || e.kind == FaultKind::kBurstLoss ||
        e.kind == FaultKind::kIidLoss || e.kind == FaultKind::kCorrupt;
    if (link_verb && !is_link_target(e.target)) {
      fail(line_no, line, "verb `" + verb + "` needs a link target");
    }
    if ((e.kind == FaultKind::kHostCrash ||
         e.kind == FaultKind::kHostRestart) &&
        e.target.kind != TargetKind::kWorker) {
      fail(line_no, line, "verb `" + verb + "` needs a worker target");
    }
    if ((e.kind == FaultKind::kRouterStall ||
         e.kind == FaultKind::kRouterKill ||
         e.kind == FaultKind::kRouterRevive) &&
        e.target.kind != TargetKind::kLeafRouter &&
        e.target.kind != TargetKind::kSpineRouter) {
      fail(line_no, line, "verb `" + verb + "` needs a router target");
    }
    schedule.add(e);
  }
  return schedule;
}

namespace {

/// Does `close` clear the fault `open` started? Same target kind and
/// instance; kAll on either side matches any instance. Crash/restart
/// additionally pair on the tenant qualifier.
bool closes(const FaultEvent& open, const FaultEvent& close) {
  if (open.target.kind != close.target.kind) return false;
  if (open.target.index != Target::kAll && close.target.index != Target::kAll &&
      open.target.index != close.target.index) {
    return false;
  }
  switch (open.kind) {
    case FaultKind::kLinkDown:
      return close.kind == FaultKind::kLinkUp;
    case FaultKind::kRouterKill:
      return close.kind == FaultKind::kRouterRevive;
    case FaultKind::kHostCrash:
      return close.kind == FaultKind::kHostRestart &&
             close.tenant == open.tenant;
    default:
      return false;
  }
}

}  // namespace

std::vector<PacketWindow> packet_windows(const FaultSchedule& schedule) {
  std::vector<PacketWindow> out;
  const auto& events = schedule.events();
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case FaultKind::kLinkFlap:
      case FaultKind::kRouterStall:
        out.push_back({ev.at, ev.at + ev.duration});
        break;
      case FaultKind::kBurstLoss:
      case FaultKind::kIidLoss:
      case FaultKind::kCorrupt:
        out.push_back({ev.at, ev.duration == sim::Duration::zero()
                                  ? sim::Time::max()
                                  : ev.at + ev.duration});
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kRouterKill:
      case FaultKind::kHostCrash: {
        // Paired fault: the earliest matching closing event at or after
        // `at` ends the window; none means it never clears.
        sim::Time end = sim::Time::max();
        for (const FaultEvent& other : events) {
          if (other.at >= ev.at && closes(ev, other) && other.at < end) {
            end = other.at;
          }
        }
        out.push_back({ev.at, end});
        break;
      }
      case FaultKind::kBucketDrop:
        out.push_back({ev.at, ev.at});  // instantaneous
        break;
      case FaultKind::kLinkUp:
      case FaultKind::kHostRestart:
      case FaultKind::kRouterRevive:
        // Closing events open no window of their own; the padding the
        // consumer applies covers the post-recovery tail.
        break;
    }
  }
  return out;
}

FaultSchedule FaultSchedule::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read fault schedule: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

}  // namespace faults
