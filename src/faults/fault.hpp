// Fault taxonomy for deterministic chaos experiments (docs/faults.md).
//
// A FaultEvent is one timed action against one target in a running
// topology: flap a link, enable burst loss or corruption on it, stall a
// router's PFEs, crash or restart a host, or drop an aggregator's active
// block records. Events carry everything needed to execute them — the
// injector holds no hidden state — so a schedule replayed on the same
// topology with the same seeds produces bit-identical runs.
#pragma once

#include <cstdint>
#include <string>

#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace faults {

enum class FaultKind {
  kLinkDown,    // administratively down (until a matching kLinkUp)
  kLinkUp,      // bring a downed link back
  kLinkFlap,    // down at `at`, back up after `duration`
  kBurstLoss,   // Gilbert–Elliott burst loss; `duration` 0 = forever
  kIidLoss,     // i.i.d. loss at `probability`; `duration` 0 = forever
  kCorrupt,     // per-frame byte corruption; `duration` 0 = forever
  kRouterStall, // PFEs hold ingress for `duration`, then replay in order
  kHostCrash,   // worker loses all allreduce state and goes deaf
  kHostRestart, // crashed worker comes back cold
  kBucketDrop,  // aggregator drops every active block record of `job_id`
  kRouterKill,  // hard power loss: frames drop, aggregation state is
                // invalidated by generation bump (docs/recovery.md)
  kRouterRevive,// killed router forwards again (state stays invalidated)
};

/// What a fault applies to. `index` selects one instance; kAll hits every
/// instance of the kind (e.g. burst loss on every host link).
enum class TargetKind {
  kHostLink,    // worker `index`'s access link
  kFabricLink,  // rack `index`'s leaf->spine trunk (cluster only)
  kWorker,      // worker `index`
  kLeafRouter,  // rack `index`'s leaf router (testbed: the one router)
  kSpineRouter, // the spine router (cluster only)
  kLeafAgg,     // rack `index`'s aggregation app (testbed: app on PFE idx)
  kSpineAgg,    // the spine's aggregation app
};

/// Which direction of a full-duplex link a fault hits.
enum class LinkDir {
  kBoth,
  kUp,    // a_to_b: worker->leaf on host links, leaf->spine on trunks
  kDown,  // b_to_a: the return direction
};

struct Target {
  static constexpr int kAll = -1;
  TargetKind kind = TargetKind::kHostLink;
  int index = kAll;
  LinkDir dir = LinkDir::kBoth;
};

struct FaultEvent {
  sim::Time at;
  FaultKind kind = FaultKind::kLinkFlap;
  Target target;
  /// Flap outage length / loss-model window / stall length. Zero means
  /// "forever" for the loss models and is invalid for flap and stall.
  sim::Duration duration = sim::Duration::zero();
  double probability = 0.0;       // kIidLoss / kCorrupt per-frame prob.
  net::GilbertElliott burst;      // kBurstLoss chain parameters
  std::uint8_t job_id = 1;        // kBucketDrop target job
  /// Tenant qualifier (docs/jobs.md): scopes kHostCrash / kHostRestart to
  /// the tenant's worker multiplexed on the target host (the injector's
  /// tenant-worker resolver maps (tenant, host) to the worker), and is an
  /// alias for job_id on kBucketDrop. -1 = untenanted: the host's primary
  /// worker / the job_id field as written.
  int tenant = -1;
  /// Loss/corruption stream seed; 0 derives one from (at, kind, target)
  /// so distinct events get decorrelated yet reproducible streams.
  std::uint64_t seed = 0;
  /// Source position in the DSL text this event was parsed from (1-based;
  /// line 0 = built programmatically). Diagnostics only — ignored by the
  /// injector and by schedule equality/digests.
  int line = 0;
  int col = 0;
};

/// Human-readable one-liner ("10ms flap host:3 for 2ms") used in the
/// injector's event log, trace rows and error messages.
std::string describe(const FaultEvent& event);

const char* kind_name(FaultKind kind);
std::string target_name(const Target& target);

}  // namespace faults
