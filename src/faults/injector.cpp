#include "faults/injector.hpp"

#include <stdexcept>

#include "cluster/cluster.hpp"
#include "trio/router.hpp"
#include "trioml/app.hpp"
#include "trioml/host.hpp"
#include "trioml/testbed.hpp"

namespace faults {
namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Label for one expanded wildcard instance ("host:3.up" from "host:*").
std::string instance_label(const Target& t, int instance) {
  Target concrete = t;
  concrete.index = instance;
  return target_name(concrete);
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simulator,
                             telemetry::Telemetry* telem)
    : sim_(simulator), telem_(telem) {
  if (telem_ != nullptr) {
    injected_ctr_ = telem_->metrics.counter("faults.injected");
    recovered_ctr_ = telem_->metrics.counter("faults.recovered");
    buckets_ctr_ = telem_->metrics.counter("faults.buckets_dropped");
    invalidated_ctr_ = telem_->metrics.counter("faults.blocks_invalidated");
  }
}

void FaultInjector::bind(cluster::Cluster& cluster) {
  topo_ = Topology{};
  engine_ = &cluster.engine();
  topo_.host_links = cluster.num_workers();
  topo_.fabric_links = cluster.num_racks();
  topo_.workers = cluster.num_workers();
  topo_.leaf_routers = cluster.num_racks();
  topo_.leaf_aggs = cluster.num_racks();
  topo_.has_spine = true;
  topo_.host_link = [&cluster](int i) { return &cluster.link(i); };
  topo_.fabric_link = [&cluster](int r) { return &cluster.fabric_link(r); };
  topo_.worker = [&cluster](int i) { return &cluster.worker(i); };
  topo_.leaf_router = [&cluster](int r) { return &cluster.leaf(r); };
  topo_.spine_router = [&cluster]() { return &cluster.spine(); };
  topo_.leaf_agg = [&cluster](int r) { return &cluster.leaf_app(r); };
  topo_.spine_agg = [&cluster]() { return &cluster.spine_app(); };
  topo_.router_apps = [&cluster](bool spine, int index) {
    std::vector<trioml::TrioMlApp*> apps;
    if (spine) apps.push_back(&cluster.spine_app());
    else apps.push_back(&cluster.leaf_app(index));
    return apps;
  };
  bound_ = true;
}

void FaultInjector::bind(trioml::Testbed& testbed) {
  topo_ = Topology{};
  engine_ = nullptr;
  topo_.host_links = testbed.num_workers();
  topo_.fabric_links = 0;
  topo_.workers = testbed.num_workers();
  topo_.leaf_routers = 1;  // `leaf:0` / `router:0` = the testbed's router
  // `leaf:n` addresses the n-th aggregating app (in hierarchical mode the
  // top-level PFE is the last one), not the raw PFE number.
  const std::vector<trioml::TrioMlApp*> apps = testbed.apps();
  topo_.leaf_aggs = static_cast<int>(apps.size());
  topo_.has_spine = false;
  topo_.host_link = [&testbed](int i) { return &testbed.link(i); };
  topo_.worker = [&testbed](int i) { return &testbed.worker(i); };
  topo_.leaf_router = [&testbed](int) { return &testbed.router(); };
  topo_.leaf_agg = [apps](int i) { return apps.at(std::size_t(i)); };
  topo_.router_apps = [apps](bool, int) { return apps; };
  bound_ = true;
}

void FaultInjector::arm(const FaultSchedule& schedule) {
  if (!bound_) {
    throw std::logic_error("FaultInjector: bind() a topology before arm()");
  }
  for (const FaultEvent& event : schedule.events()) {
    // Validate eagerly so a bad schedule fails at arm() time, not deep
    // into the run.
    int count = 0;
    bool spine = false;
    switch (event.target.kind) {
      case TargetKind::kHostLink: count = topo_.host_links; break;
      case TargetKind::kFabricLink: count = topo_.fabric_links; break;
      case TargetKind::kWorker: count = topo_.workers; break;
      case TargetKind::kLeafRouter: count = topo_.leaf_routers; break;
      case TargetKind::kLeafAgg: count = topo_.leaf_aggs; break;
      case TargetKind::kSpineRouter:
      case TargetKind::kSpineAgg:
        spine = true;
        break;
    }
    if (spine) {
      if (!topo_.has_spine) {
        throw std::out_of_range("FaultInjector: no spine in this topology (" +
                                describe(event) + ")");
      }
    } else if (count == 0 ||
               (event.target.index != Target::kAll &&
                event.target.index >= count)) {
      throw std::out_of_range("FaultInjector: target out of range (" +
                              describe(event) + ")");
    }
    if (engine_ != nullptr) {
      // Cluster topologies execute faults as engine global actions: the
      // whole cluster is quiesced at event.at, so a fault that touches
      // links or routers on several shards applies atomically and in the
      // same total order at any shard count.
      engine_->schedule_global(event.at, [this, event] { execute(event); });
    } else {
      sim_.schedule_at(event.at, [this, event] { execute(event); });
    }
  }
}

void FaultInjector::schedule_after(sim::Duration delay,
                                   sim::EventQueue::Callback fn) {
  // In engine mode this runs inside a global action, so sim_.now() (shard
  // 0's clock) reads the action's quiesce time.
  if (engine_ != nullptr) {
    engine_->schedule_global(sim_.now() + delay, std::move(fn));
  } else {
    sim_.schedule_in(delay, std::move(fn));
  }
}

std::uint64_t FaultInjector::derive_seed(const FaultEvent& event,
                                         int instance) const {
  if (event.seed != 0) return event.seed + std::uint64_t(instance) * kGolden;
  std::uint64_t h = 0x6a09e667f3bcc908ull;
  if (base_seed_ != 0) h ^= mix(base_seed_);  // 0 keeps legacy streams
  h = mix(h ^ std::uint64_t(event.at.ns()));
  h = mix(h ^ (std::uint64_t(event.kind) << 8) ^
          (std::uint64_t(event.target.kind) << 16));
  h = mix(h ^ std::uint64_t(instance + 1));
  return h | 1;  // never 0
}

void FaultInjector::record(const std::string& what, bool recovery) {
  log_.push_back(LogEntry{sim_.now(), what});
  if (recovery) {
    ++recoveries_;
    recovered_ctr_.inc();
  } else {
    ++faults_injected_;
    injected_ctr_.inc();
  }
  if (telem_ != nullptr) {
    telem_->tracer.instant(kTracePid, recovery ? 1 : 0, what, sim_.now());
  }
}

void FaultInjector::apply_to_link(const FaultEvent& event, net::Link& link,
                                  int instance) {
  const Target& t = event.target;
  const std::string name = instance_label(t, instance);
  // Apply `fn` to the selected direction(s); dir_index decorrelates seeds.
  const auto each_dir = [&](auto&& fn) {
    if (t.dir != LinkDir::kDown) fn(link.a_to_b(), 0);
    if (t.dir != LinkDir::kUp) fn(link.b_to_a(), 1);
  };
  switch (event.kind) {
    case FaultKind::kLinkDown:
      each_dir([](net::LinkEndpoint& ep, int) { ep.set_down(true); });
      record(kind_name(event.kind) + std::string(" ") + name, false);
      break;
    case FaultKind::kLinkUp:
      each_dir([](net::LinkEndpoint& ep, int) { ep.set_down(false); });
      record(kind_name(event.kind) + std::string(" ") + name, true);
      break;
    case FaultKind::kLinkFlap: {
      each_dir([](net::LinkEndpoint& ep, int) { ep.set_down(true); });
      record("flap " + name + " down", false);
      schedule_after(event.duration, [this, &link, event, name] {
        const auto dir = event.target.dir;
        if (dir != LinkDir::kDown) link.a_to_b().set_down(false);
        if (dir != LinkDir::kUp) link.b_to_a().set_down(false);
        record("flap " + name + " up", true);
      });
      break;
    }
    case FaultKind::kBurstLoss: {
      each_dir([&](net::LinkEndpoint& ep, int dir) {
        ep.set_burst_loss(event.burst,
                          derive_seed(event, instance) + dir * kGolden);
      });
      record("burst " + name + " on", false);
      if (event.duration.ns() != 0) {
        schedule_after(event.duration, [this, &link, event, name] {
          const auto dir = event.target.dir;
          if (dir != LinkDir::kDown) link.a_to_b().clear_burst_loss();
          if (dir != LinkDir::kUp) link.b_to_a().clear_burst_loss();
          record("burst " + name + " off", true);
        });
      }
      break;
    }
    case FaultKind::kIidLoss: {
      each_dir([&](net::LinkEndpoint& ep, int dir) {
        ep.set_loss(event.probability,
                    derive_seed(event, instance) + dir * kGolden);
      });
      record("loss " + name + " on", false);
      if (event.duration.ns() != 0) {
        schedule_after(event.duration, [this, &link, event, name] {
          const auto dir = event.target.dir;
          if (dir != LinkDir::kDown) link.a_to_b().set_loss(0.0);
          if (dir != LinkDir::kUp) link.b_to_a().set_loss(0.0);
          record("loss " + name + " off", true);
        });
      }
      break;
    }
    case FaultKind::kCorrupt: {
      each_dir([&](net::LinkEndpoint& ep, int dir) {
        ep.set_corruption(event.probability,
                          derive_seed(event, instance) + dir * kGolden);
      });
      record("corrupt " + name + " on", false);
      if (event.duration.ns() != 0) {
        schedule_after(event.duration, [this, &link, event, name] {
          const auto dir = event.target.dir;
          if (dir != LinkDir::kDown) link.a_to_b().set_corruption(0.0);
          if (dir != LinkDir::kUp) link.b_to_a().set_corruption(0.0);
          record("corrupt " + name + " off", true);
        });
      }
      break;
    }
    default:
      throw std::logic_error("FaultInjector: not a link fault");
  }
}

void FaultInjector::execute(const FaultEvent& event) {
  const Target& t = event.target;
  switch (t.kind) {
    case TargetKind::kHostLink:
    case TargetKind::kFabricLink: {
      const bool host = t.kind == TargetKind::kHostLink;
      const int count = host ? topo_.host_links : topo_.fabric_links;
      const auto& get = host ? topo_.host_link : topo_.fabric_link;
      if (t.index != Target::kAll) {
        apply_to_link(event, *get(t.index), t.index);
      } else {
        for (int i = 0; i < count; ++i) apply_to_link(event, *get(i), i);
      }
      break;
    }
    case TargetKind::kWorker: {
      const auto apply = [&](int i) {
        // A `tenant=` qualifier re-routes to that tenant's worker on the
        // host via the resolver the jobs layer installed (docs/jobs.md);
        // tenants without a worker there make the event a logged no-op.
        trioml::TrioMlWorker* w = topo_.worker(i);
        std::string label = "worker:" + std::to_string(i);
        if (event.tenant >= 0) {
          // Non-allreduce tenants (netrpc clients/servers) are tried
          // first; a handled event skips the worker path entirely.
          const bool restart = event.kind == FaultKind::kHostRestart;
          if (tenant_host_handler_ &&
              tenant_host_handler_(event.tenant, i, restart)) {
            record((restart ? "restart " : "crash ") + label +
                       " tenant=" + std::to_string(event.tenant),
                   restart);
            return;
          }
          if (!tenant_resolver_) {
            throw std::logic_error(
                "FaultInjector: tenant-qualified fault without a "
                "tenant-worker resolver (bind a JobManager)");
          }
          w = tenant_resolver_(event.tenant, i);
          label += " tenant=" + std::to_string(event.tenant);
        }
        if (event.kind == FaultKind::kHostCrash) {
          if (w != nullptr) w->crash();
          record("crash " + label + (w == nullptr ? " (no worker)" : ""),
                 false);
        } else if (event.kind == FaultKind::kHostRestart) {
          if (w != nullptr) w->restart();
          record("restart " + label + (w == nullptr ? " (no worker)" : ""),
                 true);
        } else {
          throw std::logic_error("FaultInjector: bad worker fault");
        }
      };
      if (t.index != Target::kAll) apply(t.index);
      else for (int i = 0; i < topo_.workers; ++i) apply(i);
      break;
    }
    case TargetKind::kLeafRouter:
    case TargetKind::kSpineRouter: {
      if (event.kind != FaultKind::kRouterStall &&
          event.kind != FaultKind::kRouterKill &&
          event.kind != FaultKind::kRouterRevive) {
        throw std::logic_error("FaultInjector: bad router fault");
      }
      const bool spine = t.kind == TargetKind::kSpineRouter;
      const auto apply = [&](trio::Router& r, int index,
                             const std::string& name) {
        switch (event.kind) {
          case FaultKind::kRouterStall:
            r.stall_for(event.duration);
            record("stall " + name, false);
            schedule_after(event.duration, [this, name] {
              record("resume " + name, true);
            });
            break;
          case FaultKind::kRouterKill: {
            // Power loss: the router's in-chip aggregation state dies
            // with it. The generation bump is the invalidation point —
            // a post-revive router cannot age out pre-kill buckets into
            // bogus degraded Results (docs/recovery.md).
            r.kill();
            std::size_t invalidated = 0;
            for (trioml::TrioMlApp* app : topo_.router_apps(spine, index)) {
              invalidated += app->invalidate_active_blocks();
            }
            blocks_invalidated_ += invalidated;
            invalidated_ctr_.inc(invalidated);
            record("kill " + name + " (" + std::to_string(invalidated) +
                       " blocks invalidated)",
                   false);
            break;
          }
          case FaultKind::kRouterRevive:
            r.revive();
            record("revive " + name, true);
            break;
          default:
            break;
        }
      };
      if (spine) {
        apply(*topo_.spine_router(), 0, "spine");
      } else if (t.index != Target::kAll) {
        apply(*topo_.leaf_router(t.index), t.index,
              "leaf:" + std::to_string(t.index));
      } else {
        for (int i = 0; i < topo_.leaf_routers; ++i) {
          apply(*topo_.leaf_router(i), i, "leaf:" + std::to_string(i));
        }
      }
      break;
    }
    case TargetKind::kLeafAgg:
    case TargetKind::kSpineAgg: {
      if (event.kind != FaultKind::kBucketDrop) {
        throw std::logic_error("FaultInjector: bad aggregator fault");
      }
      const auto apply = [&](trioml::TrioMlApp& app, const std::string& name) {
        const std::size_t n = app.drop_active_blocks(event.job_id);
        buckets_dropped_ += n;
        buckets_ctr_.inc(n);
        record("drop-buckets " + name + " job=" +
                   std::to_string(int(event.job_id)) + " (" +
                   std::to_string(n) + " blocks)",
               false);
      };
      if (t.kind == TargetKind::kSpineAgg) {
        apply(*topo_.spine_agg(), "spine");
      } else if (t.index != Target::kAll) {
        apply(*topo_.leaf_agg(t.index), "leaf:" + std::to_string(t.index));
      } else {
        for (int i = 0; i < topo_.leaf_aggs; ++i) {
          apply(*topo_.leaf_agg(i), "leaf:" + std::to_string(i));
        }
      }
      // A netrpc tenant's "buckets" are its hot-key cache entries, which
      // live on leaf 0's PFE only (docs/netrpc.md).
      if (t.kind == TargetKind::kLeafAgg && cache_dropper_ &&
          (t.index == Target::kAll || t.index == 0)) {
        const std::size_t n = cache_dropper_(event.job_id);
        if (n > 0) {
          buckets_dropped_ += n;
          buckets_ctr_.inc(n);
          record("drop-cache leaf:0 tenant=" +
                     std::to_string(int(event.job_id)) + " (" +
                     std::to_string(n) + " entries)",
                 false);
        }
      }
      break;
    }
  }
}

std::uint64_t FaultInjector::digest() const {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto eat = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const LogEntry& entry : log_) {
    eat(std::uint64_t(entry.at.ns()));
    for (char c : entry.what) {
      h ^= std::uint8_t(c);
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace faults
