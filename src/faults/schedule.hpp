// FaultSchedule: an ordered list of FaultEvents, built programmatically
// (fluent builder) or parsed from the line-oriented chaos DSL consumed
// by `trio-run --faults FILE` (grammar in docs/faults.md):
//
//   # outage on worker 3's access link, burst loss everywhere, one crash
//   at 10ms flap host:3 for 2ms
//   at 0ms  burst host:* p_enter=0.02 p_exit=0.3 for 5ms
//   at 1ms  loss fabric:0 0.05 for 3ms
//   at 2ms  corrupt host:1.up 0.01
//   at 4ms  stall leaf:0 for 500us
//   at 3ms  crash worker:5
//   at 6ms  restart worker:5
//   at 5ms  drop-buckets spine job=1
//
// Times are absolute simulation times (`10ms`, `250us`, `1s`, `4000ns`);
// events may appear in any order — the injector sorts before arming.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault.hpp"

namespace faults {

class FaultSchedule {
 public:
  // --- Fluent builder (each returns *this for chaining) ------------------
  FaultSchedule& flap(sim::Time at, Target link, sim::Duration outage);
  FaultSchedule& link_down(sim::Time at, Target link);
  FaultSchedule& link_up(sim::Time at, Target link);
  /// `window` zero = burst loss stays on for the rest of the run.
  FaultSchedule& burst_loss(sim::Time at, Target link,
                            const net::GilbertElliott& model,
                            sim::Duration window = sim::Duration::zero(),
                            std::uint64_t seed = 0);
  FaultSchedule& iid_loss(sim::Time at, Target link, double probability,
                          sim::Duration window = sim::Duration::zero(),
                          std::uint64_t seed = 0);
  FaultSchedule& corrupt(sim::Time at, Target link, double probability,
                         sim::Duration window = sim::Duration::zero(),
                         std::uint64_t seed = 0);
  FaultSchedule& stall(sim::Time at, Target router, sim::Duration length);
  /// Hard router death (docs/recovery.md): frames drop and the router's
  /// aggregation state is invalidated. Recover with revive() + the
  /// recovery control plane, not a matching `up`.
  FaultSchedule& kill(sim::Time at, Target router);
  FaultSchedule& revive(sim::Time at, Target router);
  /// `tenant` >= 0 scopes the crash/restart to that tenant's worker
  /// multiplexed on host `worker` (docs/jobs.md); -1 = primary worker.
  FaultSchedule& crash(sim::Time at, int worker, int tenant = -1);
  FaultSchedule& restart(sim::Time at, int worker, int tenant = -1);
  FaultSchedule& drop_buckets(sim::Time at, Target agg, std::uint8_t job_id);
  FaultSchedule& add(FaultEvent event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Parses the chaos DSL. Throws std::invalid_argument naming the
  /// offending line and column on any syntax error.
  static FaultSchedule parse(const std::string& text);
  /// parse() over a file's contents; throws std::runtime_error when the
  /// file cannot be read.
  static FaultSchedule load(const std::string& path);

  /// Serializes the schedule back into DSL text parse() accepts —
  /// `parse(s.to_dsl())` produces an equivalent schedule. The replayable
  /// `.faults` repro format the vigil shrinker emits (docs/vigil.md).
  /// Seeds above 2^53 lose precision through the DSL's numeric values;
  /// the vigil generator only draws 32-bit seeds for this reason.
  std::string to_dsl() const;

  /// Cross-event semantic validation (docs/faults.md "Schedule
  /// validation"). Rejects, with the offending event's line/col:
  ///   * `revive` with no kill still open on that router;
  ///   * `kill` while an earlier kill on the same router is still open
  ///     (overlapping kill–revive windows);
  ///   * `restart` with no crash open on that (worker, tenant), and
  ///     `crash` while one is already open;
  ///   * when `declared_tenants` is non-null, any `tenant=` qualifier
  ///     naming a tenant outside it (the tenants the jobs spec declares).
  /// Wildcard targets match any instance. Throws std::invalid_argument.
  void validate(const std::vector<int>* declared_tenants = nullptr) const;

  // --- Target shorthands (mirror the DSL's target syntax) ----------------
  static Target host_link(int worker, LinkDir dir = LinkDir::kBoth) {
    return Target{TargetKind::kHostLink, worker, dir};
  }
  static Target fabric_link(int rack, LinkDir dir = LinkDir::kBoth) {
    return Target{TargetKind::kFabricLink, rack, dir};
  }
  static Target worker(int index) {
    return Target{TargetKind::kWorker, index, LinkDir::kBoth};
  }
  static Target leaf_router(int rack) {
    return Target{TargetKind::kLeafRouter, rack, LinkDir::kBoth};
  }
  static Target spine_router() {
    return Target{TargetKind::kSpineRouter, 0, LinkDir::kBoth};
  }
  static Target leaf_agg(int rack) {
    return Target{TargetKind::kLeafAgg, rack, LinkDir::kBoth};
  }
  static Target spine_agg() {
    return Target{TargetKind::kSpineAgg, 0, LinkDir::kBoth};
  }

 private:
  std::vector<FaultEvent> events_;
};

/// Parses `10ms` / `250us` / `1s` / `4000ns` (integer or decimal number +
/// unit). Exposed for flag parsing in tools; throws on bad input.
sim::Duration parse_duration(const std::string& token);

/// One packet-fidelity window a fault implies (docs/fluid.md): while any
/// window is active, fluid-demoted flows must run as real packets so the
/// fault's effects (drops, corruption, stalls, kills) are packet-exact.
/// `end == sim::Time::max()` means the fault never clears within the
/// schedule; instantaneous faults (bucket drops) have `end == start` —
/// consumers pad for the recovery tail.
struct PacketWindow {
  sim::Time start;
  sim::Time end;
};

/// Derives every packet-fidelity window from a schedule: windowed faults
/// (`for ...`) span their duration, paired faults (down/up, kill/revive,
/// crash/restart) span until the matching closing event on the same
/// target, unpaired ones run forever. Windows may overlap; they are
/// returned in event order, not merged.
std::vector<PacketWindow> packet_windows(const FaultSchedule& schedule);

}  // namespace faults
