#include "faults/fault.hpp"

#include <sstream>

namespace faults {
namespace {

std::string format_ns(std::int64_t ns) {
  std::ostringstream out;
  if (ns != 0 && ns % 1'000'000'000 == 0) out << ns / 1'000'000'000 << "s";
  else if (ns != 0 && ns % 1'000'000 == 0) out << ns / 1'000'000 << "ms";
  else if (ns != 0 && ns % 1'000 == 0) out << ns / 1'000 << "us";
  else out << ns << "ns";
  return out.str();
}

}  // namespace

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "down";
    case FaultKind::kLinkUp: return "up";
    case FaultKind::kLinkFlap: return "flap";
    case FaultKind::kBurstLoss: return "burst";
    case FaultKind::kIidLoss: return "loss";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kRouterStall: return "stall";
    case FaultKind::kHostCrash: return "crash";
    case FaultKind::kHostRestart: return "restart";
    case FaultKind::kBucketDrop: return "drop-buckets";
    case FaultKind::kRouterKill: return "kill";
    case FaultKind::kRouterRevive: return "revive";
  }
  return "?";
}

std::string target_name(const Target& target) {
  std::string out;
  switch (target.kind) {
    case TargetKind::kHostLink: out = "host"; break;
    case TargetKind::kFabricLink: out = "fabric"; break;
    case TargetKind::kWorker: out = "worker"; break;
    case TargetKind::kLeafRouter: out = "leaf"; break;
    case TargetKind::kSpineRouter: return "spine";
    case TargetKind::kLeafAgg: out = "leaf"; break;
    case TargetKind::kSpineAgg: return "spine";
  }
  out += ':';
  out += target.index == Target::kAll ? "*" : std::to_string(target.index);
  if (target.dir == LinkDir::kUp) out += ".up";
  else if (target.dir == LinkDir::kDown) out += ".down";
  return out;
}

std::string describe(const FaultEvent& event) {
  std::ostringstream out;
  out << format_ns(event.at.ns()) << ' ' << kind_name(event.kind) << ' '
      << target_name(event.target);
  switch (event.kind) {
    case FaultKind::kLinkFlap:
    case FaultKind::kRouterStall:
      out << " for " << format_ns(event.duration.ns());
      break;
    case FaultKind::kBurstLoss:
      out << " p_enter=" << event.burst.p_enter
          << " p_exit=" << event.burst.p_exit;
      if (event.duration.ns() != 0) {
        out << " for " << format_ns(event.duration.ns());
      }
      break;
    case FaultKind::kIidLoss:
    case FaultKind::kCorrupt:
      out << ' ' << event.probability;
      if (event.duration.ns() != 0) {
        out << " for " << format_ns(event.duration.ns());
      }
      break;
    case FaultKind::kBucketDrop:
      out << " job=" << int(event.job_id);
      break;
    default:
      break;
  }
  if (event.tenant >= 0 && (event.kind == FaultKind::kHostCrash ||
                            event.kind == FaultKind::kHostRestart)) {
    out << " tenant=" << event.tenant;
  }
  return out.str();
}

}  // namespace faults
