// FaultInjector: binds a FaultSchedule to a live topology and executes
// it on the simulated clock (docs/faults.md).
//
// The injector adapts either a trioml::Testbed (single router) or a
// cluster::Cluster (leaf/spine) behind a uniform Topology view, expands
// wildcard targets, schedules every event — and the recovery half of
// windowed events (flap up, loss-model off) — and records each action in
// an ordered event log. The FNV-1a digest over that log is the replay
// fingerprint: two runs of the same schedule on the same topology must
// produce equal digests (tests/faults_test.cpp).
//
// Every action is counted in the telemetry registry under `faults.*` and
// emitted as an instant trace row on pid kTracePid, so chaos shows up
// directly in Perfetto next to the PFE spans it perturbs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faults/fault.hpp"
#include "faults/schedule.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace cluster {
class Cluster;
}
namespace sim {
class ShardedSimulator;
}
namespace trioml {
class Testbed;
class TrioMlApp;
class TrioMlWorker;
}
namespace trio {
class Router;
}

namespace faults {

class FaultInjector {
 public:
  /// `telem` may be null (no counters / trace rows).
  explicit FaultInjector(sim::Simulator& simulator,
                         telemetry::Telemetry* telem = nullptr);

  /// Binds the injector to a topology. Call exactly one bind() before
  /// arm(); the topology must outlive the injector.
  ///
  /// A Cluster bind also attaches the injector to the cluster's sharded
  /// engine: every fault executes as a *global action* — on the engine's
  /// window-planning thread, with all shards parked, all events before
  /// the fault time executed and every shard clock reading it. That makes
  /// chaos runs shard-count invariant (one log, one total order) without
  /// per-shard fault plumbing.
  void bind(cluster::Cluster& cluster);
  void bind(trioml::Testbed& testbed);

  /// Schedules every event of `schedule` on the simulator. May be called
  /// multiple times (schedules accumulate). Throws std::logic_error when
  /// unbound and std::out_of_range for a target the topology lacks.
  void arm(const FaultSchedule& schedule);

  /// Base seed folded into every derived loss/corruption stream seed
  /// (`trio-run --seed`, docs/faults.md): events with an explicit
  /// `seed=` keep it; events without one get decorrelated streams that
  /// differ between base seeds yet replay identically for the same one.
  void set_base_seed(std::uint64_t seed) { base_seed_ = seed; }
  std::uint64_t base_seed() const { return base_seed_; }

  /// Installs the tenant-worker resolver (docs/jobs.md): maps a
  /// `tenant=` qualified crash/restart to the tenant's worker on host
  /// `host`. Wired up by jobs::JobManager; returning null makes the event
  /// a logged no-op (tenant has no worker on that host).
  void set_tenant_worker_resolver(
      std::function<trioml::TrioMlWorker*(int tenant, int host)> resolver) {
    tenant_resolver_ = std::move(resolver);
  }

  /// Tried *before* the worker resolver for `tenant=` qualified
  /// crash/restart: non-allreduce tenant endpoints on a host (netrpc
  /// clients/servers, docs/netrpc.md). Return true when the event was
  /// handled; false falls through to the worker resolver.
  void set_tenant_host_handler(
      std::function<bool(int tenant, int host, bool restart)> handler) {
    tenant_host_handler_ = std::move(handler);
  }

  /// `bucketdrop` against leaf 0 with a netrpc tenant's job id destroys
  /// that tenant's hot-key cache entries (its aggregation state); returns
  /// the number of entries dropped, 0 for non-netrpc tenants.
  void set_cache_dropper(
      std::function<std::size_t(std::uint8_t tenant)> dropper) {
    cache_dropper_ = std::move(dropper);
  }

  struct LogEntry {
    sim::Time at;
    std::string what;
  };
  /// Every executed action (faults and recoveries) in execution order.
  const std::vector<LogEntry>& log() const { return log_; }
  /// FNV-1a fingerprint of the log — equal across deterministic replays.
  std::uint64_t digest() const;

  std::uint64_t faults_injected() const { return faults_injected_; }
  std::uint64_t recoveries() const { return recoveries_; }
  /// Total block records destroyed by kBucketDrop events.
  std::uint64_t buckets_dropped() const { return buckets_dropped_; }
  /// Total block records invalidated by kRouterKill generation bumps.
  std::uint64_t blocks_invalidated() const { return blocks_invalidated_; }

  /// Trace pid for chaos instant rows (clears the Cluster summary band).
  static constexpr int kTracePid = 999'000;

 private:
  /// Uniform view over Testbed / Cluster. Counts drive wildcard
  /// expansion; absent parts (e.g. a testbed's spine) are size 0 / null.
  struct Topology {
    int host_links = 0;
    int fabric_links = 0;
    int workers = 0;
    int leaf_routers = 0;
    int leaf_aggs = 0;
    bool has_spine = false;
    std::function<net::Link*(int)> host_link;
    std::function<net::Link*(int)> fabric_link;
    std::function<trioml::TrioMlWorker*(int)> worker;
    std::function<trio::Router*(int)> leaf_router;
    std::function<trio::Router*()> spine_router;
    std::function<trioml::TrioMlApp*(int)> leaf_agg;
    std::function<trioml::TrioMlApp*()> spine_agg;
    /// Aggregation apps living on a given router (kRouterKill models
    /// power loss, which takes the router's in-chip state with it). The
    /// testbed's one router hosts every app; a cluster leaf hosts one.
    std::function<std::vector<trioml::TrioMlApp*>(bool spine, int index)>
        router_apps;
  };

  void execute(const FaultEvent& event);
  void apply_to_link(const FaultEvent& event, net::Link& link, int instance);
  void record(const std::string& what, bool recovery);
  std::uint64_t derive_seed(const FaultEvent& event, int instance) const;
  /// Schedules the recovery half of a windowed fault (flap up, loss-model
  /// off): a global action in engine mode, a plain event otherwise.
  void schedule_after(sim::Duration delay, sim::EventQueue::Callback fn);

  sim::Simulator& sim_;
  sim::ShardedSimulator* engine_ = nullptr;
  telemetry::Telemetry* telem_;
  std::uint64_t base_seed_ = 0;
  Topology topo_;
  bool bound_ = false;
  std::function<trioml::TrioMlWorker*(int tenant, int host)> tenant_resolver_;
  std::function<bool(int tenant, int host, bool restart)> tenant_host_handler_;
  std::function<std::size_t(std::uint8_t tenant)> cache_dropper_;

  std::vector<LogEntry> log_;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t buckets_dropped_ = 0;
  std::uint64_t blocks_invalidated_ = 0;
  telemetry::Counter injected_ctr_;
  telemetry::Counter recovered_ctr_;
  telemetry::Counter buckets_ctr_;
  telemetry::Counter invalidated_ctr_;
};

}  // namespace faults
