// Tests for the Microcode language's arrays and switch statements
// (paper §3.1: "Microcode also supports pointers and arrays, conditions,
// function calls and gotos, and switch statements").
#include <gtest/gtest.h>

#include "microcode/compiler.hpp"
#include "microcode/error.hpp"
#include "microcode/interpreter.hpp"
#include "trio/router.hpp"

namespace {

using microcode::CompileError;

class Lang2Runner : public ::testing::Test {
 protected:
  Lang2Runner() : router(sim, trio::Calibration{}, 1, 2) {}

  void run(const std::string& source) {
    auto prog = microcode::compile(source);
    router.pfe(0).set_program_factory(microcode::make_program_factory(prog));
    std::vector<std::uint8_t> payload(32, 0);
    router.receive(
        net::Packet::make(net::build_udp_frame(
            {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
            net::Ipv4Addr::from_octets(10, 0, 0, 1),
            net::Ipv4Addr::from_octets(10, 0, 0, 2), 1, 2, payload)),
        0);
    sim.run();
  }

  std::uint64_t sms64(std::uint64_t addr) {
    return router.pfe(0).sms().peek_u64(addr);
  }

  sim::Simulator sim;
  trio::Router router;
};

// ---------------------------------------------------------------------------
// Arrays

TEST_F(Lang2Runner, ArrayStoreAndLoad) {
  run(R"(
    memory table[4];
    a:
    begin
      table[0] = 11;
      table[3] = 44;
    end
    b:
    begin
      ir0 = table[0] + table[3];
    end
    c:
    begin
      SmsWrite64(1024, ir0);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(1024), 55u);
}

TEST_F(Lang2Runner, ArrayDynamicIndex) {
  run(R"(
    memory lut[8];
    a:
    begin
      ir1 = 5;
      lut[2] = 100;
    end
    b:
    begin
      lut[ir1] = 200;
    end
    c:
    begin
      ir0 = lut[ir1 - 3] + lut[ir1];
    end
    d:
    begin
      SmsWrite64(2048, ir0);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(2048), 300u);
}

TEST_F(Lang2Runner, ArrayOutOfBoundsTraps) {
  EXPECT_THROW(run(R"(
    memory small[2];
    a:
    begin
      ir1 = 7;
      small[ir1] = 1;
    end
  )"),
               std::runtime_error);
}

TEST(Lang2Compile, ArrayDeclarationRules) {
  EXPECT_THROW(microcode::compile(R"(
    memory bad[0];
    a:
    begin
      Exit();
    end
  )"),
               CompileError);
  EXPECT_THROW(microcode::compile(R"(
    struct h_t { a : 8; };
    memory h_t arr[4];
    a:
    begin
      Exit();
    end
  )"),
               CompileError);
  // An array too large for LMEM (1.25 KB minus the 192 B head area).
  EXPECT_THROW(microcode::compile(R"(
    memory huge[200];
    a:
    begin
      Exit();
    end
  )"),
               CompileError);
}

TEST(Lang2Compile, IndexingNonArrayFails) {
  EXPECT_THROW(microcode::compile(R"(
    memory x;
    a:
    begin
      ir0 = x[1];
    end
  )"),
               CompileError);
}

// ---------------------------------------------------------------------------
// Switch statements

TEST_F(Lang2Runner, SwitchSelectsMatchingArm) {
  run(R"(
    a:
    begin
      ir1 = 2;
      switch (ir1) {
        case 1: { ir0 = 100; }
        case 2: { ir0 = 200; }
        case 3: { ir0 = 300; }
        default: { ir0 = 999; }
      }
    end
    b:
    begin
      SmsWrite64(512, ir0);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(512), 200u);
}

TEST_F(Lang2Runner, SwitchFallsToDefault) {
  run(R"(
    a:
    begin
      ir1 = 77;
      switch (ir1) {
        case 1: { ir0 = 100; }
        default: { ir0 = 999; }
      }
    end
    b:
    begin
      SmsWrite64(512, ir0);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(512), 999u);
}

TEST_F(Lang2Runner, SwitchWithoutDefaultFallsThrough) {
  run(R"(
    a:
    begin
      ir0 = 5;
      switch (ir0) {
        case 9: { ir0 = 1; }
      }
    end
    b:
    begin
      SmsWrite64(512, ir0);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(512), 5u);
}

TEST_F(Lang2Runner, SwitchArmsCanBranch) {
  // The paper's multi-way branching: each arm picks the next instruction.
  run(R"(
    a:
    begin
      ir1 = 3;
      switch (ir1) {
        case 1: { goto one; }
        case 3: { goto three; }
        default: { goto other; }
      }
    end
    one:
    begin
      SmsWrite64(512, 1);
      Exit();
    end
    three:
    begin
      SmsWrite64(512, 3);
      Exit();
    end
    other:
    begin
      SmsWrite64(512, 0);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(512), 3u);
}

TEST(Lang2Compile, SwitchLimits) {
  // More than 8 targets exceeds one instruction's multi-way branch.
  std::string big = "a:\nbegin\n  switch (ir0) {\n";
  for (int i = 0; i < 9; ++i) {
    big += "    case " + std::to_string(i) + ": { goto a; }\n";
  }
  big += "  }\nend\n";
  EXPECT_THROW(microcode::compile(big), CompileError);

  EXPECT_THROW(microcode::compile(R"(
    a:
    begin
      switch (ir0) {
        case 1: { goto a; }
        case 1: { goto a; }
      }
    end
  )"),
               CompileError);
}

// ---------------------------------------------------------------------------
// A realistic combination: protocol dispatch via switch + per-protocol
// counters via an LMEM array staging the counter address.

TEST_F(Lang2Runner, ProtocolDispatchTable) {
  run(R"(
    struct ether_t { dmac : 48; smac : 48; etype : 16; };
    memory ether_t *e = 0;
    memory seen[4];
    a:
    begin
      switch (e->etype) {
        case 0x0800: { ir1 = 1; }
        case 0x86dd: { ir1 = 2; }
        case 0x0806: { ir1 = 3; }
        default: { ir1 = 0; }
      }
    end
    b:
    begin
      seen[ir1] = seen[ir1] + 1;
    end
    c:
    begin
      SmsWrite64(4096, seen[1]);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(4096), 1u);  // the test frame is IPv4
}

// ---------------------------------------------------------------------------
// The 'bus' storage class (§3.1): values that feed the ALUs directly,
// valid only within one instruction — and free of read/write ports.

TEST_F(Lang2Runner, BusVariablesCarryValuesWithinAnInstruction) {
  run(R"(
    bus t;
    a:
    begin
      t = ir1 + 5;
      ir0 = t * 2;
    end
    b:
    begin
      SmsWrite64(256, ir0);
      Exit();
    end
  )");
  EXPECT_EQ(sms64(256), 10u);  // (0 + 5) * 2
}

TEST(Lang2Bus, CrossInstructionReadRejected) {
  EXPECT_THROW(microcode::compile(R"(
    bus t;
    a:
    begin
      t = 1;
    end
    b:
    begin
      ir0 = t;
    end
  )"),
               CompileError);
}

TEST(Lang2Bus, ReadBeforeAssignmentRejected) {
  EXPECT_THROW(microcode::compile(R"(
    bus t;
    a:
    begin
      ir0 = t;
      t = 1;
    end
  )"),
               CompileError);
}

TEST(Lang2Bus, BusWritesDoNotConsumeWritePorts) {
  // Two register writes (the limit) PLUS two bus assignments in one
  // instruction compile fine: the bus is not a write port.
  EXPECT_NO_THROW(microcode::compile(R"(
    bus t0;
    bus t1;
    a:
    begin
      t0 = 1;
      t1 = 2;
      ir0 = t0;
      ir1 = t1;
      Exit();
    end
  )"));
}

TEST(Lang2Bus, NoInitializersOrTypes) {
  EXPECT_THROW(microcode::compile(R"(
    bus t = 5;
    a:
    begin
      Exit();
    end
  )"),
               CompileError);
  EXPECT_THROW(microcode::compile(R"(
    struct h_t { a : 8; };
    bus h_t *t;
    a:
    begin
      Exit();
    end
  )"),
               CompileError);
}

}  // namespace
