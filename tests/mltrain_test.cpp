#include <gtest/gtest.h>

#include "mltrain/model.hpp"
#include "mltrain/straggler_gen.hpp"
#include "mltrain/trainer.hpp"

namespace {

using namespace mltrain;

TEST(ModelZoo, MatchesTableOne) {
  const auto& zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 3u);
  const auto& resnet = model_by_name("ResNet50");
  EXPECT_DOUBLE_EQ(resnet.size_mb, 98);
  EXPECT_EQ(resnet.batch_size_per_gpu, 64);
  const auto& vgg = model_by_name("VGG11");
  EXPECT_DOUBLE_EQ(vgg.size_mb, 507);
  EXPECT_EQ(vgg.batch_size_per_gpu, 128);
  const auto& densenet = model_by_name("DenseNet161");
  EXPECT_DOUBLE_EQ(densenet.size_mb, 109);
  EXPECT_EQ(densenet.batch_size_per_gpu, 64);
  EXPECT_EQ(resnet.dataset, "ImageNet");
  EXPECT_THROW(model_by_name("AlexNet"), std::invalid_argument);
}

TEST(StragglerGen, ZeroProbabilityNeverStraggles) {
  SlowWorkerPattern gen(0.0, 6, 100.0, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(gen.next_iteration().empty());
  }
}

TEST(StragglerGen, EventRateMatchesProbability) {
  SlowWorkerPattern gen(0.16, 6, 100.0, 2);
  int events = 0;
  const int iters = 50'000;
  for (int i = 0; i < iters; ++i) {
    events += static_cast<int>(gen.next_iteration().size());
  }
  // Three delay points, each straggling w.p. 0.16.
  EXPECT_NEAR(static_cast<double>(events) / iters, 3 * 0.16, 0.02);
}

TEST(StragglerGen, SleepWithinHalfToTwiceTypical) {
  SlowWorkerPattern gen(1.0, 6, 100.0, 3);
  for (int i = 0; i < 1000; ++i) {
    for (const auto& e : gen.next_iteration()) {
      EXPECT_GE(e.sleep_ms, 50.0);
      EXPECT_LE(e.sleep_ms, 200.0);
      EXPECT_GE(e.worker, 0);
      EXPECT_LT(e.worker, 6);
    }
  }
}

TEST(StragglerGen, DelaysAccumulatePerWorker) {
  SlowWorkerPattern gen(1.0, 1, 100.0, 4);  // single worker: all 3 points hit
  const auto delays = gen.next_iteration_delays();
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_GE(delays[0], 3 * 50.0);
  EXPECT_LE(delays[0], 3 * 200.0);
}

TEST(Trainer, RingAllreduceFormula) {
  // 2*(N-1)/N * bytes at rate.
  const double ms = Trainer::ring_allreduce_ms(98e6, 6, 100.0);
  EXPECT_NEAR(ms, 2.0 * 5 / 6 * 98e6 * 8 / 100e9 * 1e3, 1e-9);
}

TEST(Trainer, IdealIterationMatchesFig13Baselines) {
  TrainConfig cfg;
  for (const auto& [name, lo, hi] :
       {std::tuple{"ResNet50", 95.0, 115.0},
        std::tuple{"DenseNet161", 215.0, 245.0},
        std::tuple{"VGG11", 550.0, 610.0}}) {
    Trainer t(model_by_name(name), Backend::kIdeal, cfg);
    const auto res = t.run_iterations(100);
    EXPECT_GT(res.mean_iteration_ms, lo) << name;
    EXPECT_LT(res.mean_iteration_ms, hi) << name;
    EXPECT_EQ(res.degraded_fraction, 0.0);
  }
}

TEST(Trainer, NoStragglersBackendsNearlyEqual) {
  TrainConfig cfg;
  cfg.straggle_probability = 0.0;
  const auto& m = model_by_name("ResNet50");
  const double ideal =
      Trainer(m, Backend::kIdeal, cfg).run_iterations(100).mean_iteration_ms;
  const double sml =
      Trainer(m, Backend::kSwitchML, cfg).run_iterations(100).mean_iteration_ms;
  const double trio =
      Trainer(m, Backend::kTrioML, cfg).run_iterations(100).mean_iteration_ms;
  EXPECT_LT(sml / ideal, 1.15);
  EXPECT_LT(trio / ideal, 1.15);
  EXPECT_GE(sml / ideal, 1.0);
  EXPECT_GE(trio / ideal, 1.0);
}

TEST(Trainer, StragglersHurtSwitchMlNotTrioMl) {
  // The headline claim (Fig 13): at p=16%, Trio-ML stays near Ideal
  // while SwitchML degrades by ~1.7-1.8x.
  TrainConfig cfg;
  cfg.straggle_probability = 0.16;
  for (const auto& model : model_zoo()) {
    const double ideal = Trainer(model, Backend::kIdeal, cfg)
                             .run_iterations(300)
                             .mean_iteration_ms;
    const double sml = Trainer(model, Backend::kSwitchML, cfg)
                           .run_iterations(300)
                           .mean_iteration_ms;
    const double trio = Trainer(model, Backend::kTrioML, cfg)
                            .run_iterations(300)
                            .mean_iteration_ms;
    const double speedup = sml / trio;
    EXPECT_GT(speedup, 1.4) << model.name;
    EXPECT_LT(speedup, 2.2) << model.name;
    EXPECT_LT(trio / ideal, 1.35) << model.name;  // Trio close to Ideal
  }
}

TEST(Trainer, IterationTimeMonotoneInProbability) {
  const auto& m = model_by_name("ResNet50");
  double prev_sml = 0;
  for (double p : {0.0, 0.04, 0.08, 0.12, 0.16}) {
    TrainConfig cfg;
    cfg.straggle_probability = p;
    cfg.seed = 7;
    const double sml = Trainer(m, Backend::kSwitchML, cfg)
                           .run_iterations(500)
                           .mean_iteration_ms;
    EXPECT_GE(sml, prev_sml * 0.98) << "p=" << p;
    prev_sml = sml;
  }
}

TEST(Trainer, DegradedIterationsReduceProgress) {
  TrainConfig cfg;
  cfg.straggle_probability = 0.5;
  Trainer t(model_by_name("ResNet50"), Backend::kTrioML, cfg);
  bool saw_partial = false;
  for (int i = 0; i < 200; ++i) {
    const auto out = t.step();
    if (out.degraded) {
      saw_partial = true;
      EXPECT_LT(out.progress, 1.0);
      EXPECT_LT(out.contributors, cfg.num_workers);
      EXPECT_GE(out.contributors, 1);
    } else {
      EXPECT_DOUBLE_EQ(out.progress, 1.0);
    }
  }
  EXPECT_TRUE(saw_partial);
}

TEST(Trainer, ShortStallsRecoverWithoutDegradation) {
  // If the detection timeout exceeds every sleep, Trio never degrades.
  TrainConfig cfg;
  cfg.straggle_probability = 0.3;
  cfg.straggler_timeout_ms = 1e9;  // effectively infinite
  Trainer t(model_by_name("ResNet50"), Backend::kTrioML, cfg);
  const auto res = t.run_iterations(200);
  EXPECT_EQ(res.degraded_fraction, 0.0);
}

TEST(Trainer, AccuracyCurveSaturates) {
  TrainConfig cfg;
  Trainer t(model_by_name("ResNet50"), Backend::kIdeal, cfg);
  const double a0 = t.accuracy();
  t.run_iterations(10'000);
  const double a1 = t.accuracy();
  t.run_iterations(100'000);
  const double a2 = t.accuracy();
  EXPECT_LT(a0, a1);
  EXPECT_LT(a1, a2);
  EXPECT_LT(a2, model_by_name("ResNet50").acc_max + 1e-9);
}

TEST(Trainer, TimeToAccuracySpeedupBelowIterationSpeedup) {
  // The paper's Fig 12 vs Fig 13 relationship: partial aggregation costs
  // some statistical efficiency, so TTA speedup (~1.56x) is below the
  // iteration-time speedup (~1.72x).
  TrainConfig cfg;
  cfg.straggle_probability = 0.16;
  const auto& m = model_by_name("ResNet50");

  Trainer trio(m, Backend::kTrioML, cfg);
  Trainer sml(m, Backend::kSwitchML, cfg);
  const auto r_trio = trio.train_to_accuracy(m.target_acc, 2000);
  const auto r_sml = sml.train_to_accuracy(m.target_acc, 2000);
  ASSERT_GT(r_trio.time_to_target_minutes, 0);
  ASSERT_GT(r_sml.time_to_target_minutes, 0);

  const double tta_speedup =
      r_sml.time_to_target_minutes / r_trio.time_to_target_minutes;
  const double iter_speedup =
      r_sml.mean_iteration_ms / r_trio.mean_iteration_ms;
  EXPECT_GT(tta_speedup, 1.3);
  EXPECT_LT(tta_speedup, iter_speedup);
}

TEST(Trainer, CurveSamplingPopulated) {
  TrainConfig cfg;
  Trainer t(model_by_name("ResNet50"), Backend::kIdeal, cfg);
  const auto res = t.train_to_accuracy(90.0, 2000);
  EXPECT_GT(res.curve.size(), 10u);
  // Curve is monotone in time and accuracy.
  for (std::size_t i = 1; i < res.curve.size(); ++i) {
    EXPECT_GE(res.curve[i].first, res.curve[i - 1].first);
    EXPECT_GE(res.curve[i].second, res.curve[i - 1].second - 1e-9);
  }
}

TEST(Trainer, DeterministicForSeed) {
  TrainConfig cfg;
  cfg.straggle_probability = 0.16;
  cfg.seed = 99;
  const auto& m = model_by_name("VGG11");
  const auto a = Trainer(m, Backend::kTrioML, cfg).run_iterations(200);
  const auto b = Trainer(m, Backend::kTrioML, cfg).run_iterations(200);
  EXPECT_DOUBLE_EQ(a.mean_iteration_ms, b.mean_iteration_ms);
}

TEST(Trainer, BackendNames) {
  EXPECT_STREQ(backend_name(Backend::kIdeal), "Ideal");
  EXPECT_STREQ(backend_name(Backend::kSwitchML), "SwitchML");
  EXPECT_STREQ(backend_name(Backend::kTrioML), "Trio-ML");
}

}  // namespace
