// Property test for the Microcode toolchain: randomly generated
// expressions are compiled by the TC-style compiler, executed by the
// interpreter on a simulated PPE thread, and compared against a host-side
// reference evaluation of the same tree. Any mismatch is a code-gen or
// interpreter bug.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "microcode/compiler.hpp"
#include "microcode/interpreter.hpp"
#include "sim/random.hpp"
#include "trio/router.hpp"

namespace {

/// A random expression tree that respects one instruction's resource
/// budget (register reads and ALU ops) and never divides by zero.
struct ExprGen {
  sim::Rng& rng;
  int reads_left;
  int ops_left;
  // Values of ir1..ir3 (set by preamble instructions).
  std::uint64_t ir[4];

  struct Node {
    std::string text;
    std::uint64_t value;
  };

  Node leaf() {
    if (reads_left > 0 && rng.bernoulli(0.5)) {
      --reads_left;
      const int r = static_cast<int>(rng.uniform_int(1, 3));
      return {"ir" + std::to_string(r), ir[r]};
    }
    const std::uint64_t c = rng.next_below(1 << 16);
    return {std::to_string(c), c};
  }

  Node gen(int depth) {
    if (depth == 0 || ops_left == 0) return leaf();
    if (ops_left > 0 && rng.bernoulli(0.2)) {
      // Unary.
      --ops_left;
      Node a = gen(depth - 1);
      if (rng.bernoulli(0.5)) {
        return {"(~" + a.text + ")", ~a.value};
      }
      return {"(!" + a.text + ")", a.value == 0 ? 1ull : 0ull};
    }
    --ops_left;
    Node a = gen(depth - 1);
    Node b = gen(depth - 1);
    switch (rng.next_below(11)) {
      case 0: return {"(" + a.text + " + " + b.text + ")", a.value + b.value};
      case 1: return {"(" + a.text + " - " + b.text + ")", a.value - b.value};
      case 2: return {"(" + a.text + " * " + b.text + ")", a.value * b.value};
      case 3: return {"(" + a.text + " & " + b.text + ")", a.value & b.value};
      case 4: return {"(" + a.text + " | " + b.text + ")", a.value | b.value};
      case 5: return {"(" + a.text + " ^ " + b.text + ")", a.value ^ b.value};
      case 6: {
        const std::uint64_t sh = b.value % 64;
        return {"(" + a.text + " << (" + b.text + " % 64))", a.value << sh};
      }
      case 7: {
        const std::uint64_t sh = b.value % 64;
        return {"(" + a.text + " >> (" + b.text + " % 64))", a.value >> sh};
      }
      case 8:
        return {"(" + a.text + " == " + b.text + ")",
                a.value == b.value ? 1ull : 0ull};
      case 9:
        return {"(" + a.text + " < " + b.text + ")",
                a.value < b.value ? 1ull : 0ull};
      default:
        return {"(" + a.text + " && " + b.text + ")",
                (a.value != 0 && b.value != 0) ? 1ull : 0ull};
    }
  }
};

class MicrocodeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MicrocodeFuzz, ExpressionsMatchReferenceEvaluation) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b9 + 17);
  for (int trial = 0; trial < 40; ++trial) {
    ExprGen gen{rng, /*reads_left=*/3, /*ops_left=*/6, {}};
    for (int r = 1; r <= 3; ++r) gen.ir[r] = rng.next_below(1 << 20);
    const auto node = gen.gen(3);

    // The `% 64` shift guards add ops+reads beyond the budget the
    // generator tracked; give this block a generous private budget (the
    // stock limits are exercised by microcode_test.cpp).
    microcode::InstructionLimits limits;
    limits.max_alu_ops = 64;
    limits.max_reg_reads = 16;

    const std::string source =
        "setup1:\nbegin\n  ir1 = " + std::to_string(gen.ir[1]) +
        ";\n  ir2 = " + std::to_string(gen.ir[2]) +
        ";\nend\nsetup2:\nbegin\n  ir3 = " + std::to_string(gen.ir[3]) +
        ";\nend\ncompute:\nbegin\n  ir0 = " + node.text +
        ";\nend\nstore:\nbegin\n  SmsWrite64(4096, ir0);\n  Exit();\nend\n";

    std::shared_ptr<const microcode::CompiledProgram> program;
    ASSERT_NO_THROW(program = microcode::compile(source, limits))
        << source;

    sim::Simulator sim;
    trio::Router router(sim, trio::Calibration{}, 1, 2);
    router.pfe(0).set_program_factory(
        microcode::make_program_factory(program));
    std::vector<std::uint8_t> payload(32, 0);
    auto frame = net::build_udp_frame(
        {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
        net::Ipv4Addr::from_octets(10, 0, 0, 1),
        net::Ipv4Addr::from_octets(10, 0, 0, 2), 1, 2, payload);
    router.receive(net::Packet::make(std::move(frame)), 0);
    sim.run();

    ASSERT_EQ(router.pfe(0).sms().peek_u64(4096), node.value)
        << "expression: " << node.text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MicrocodeFuzz, ::testing::Range(0, 8));

TEST(MicrocodeFuzzChains, RandomGotoChainsTerminateCorrectly) {
  // Random permutation chains: block i assigns a token and jumps to the
  // next; the final token must reflect the *traversal* order.
  sim::Rng rng(0xc4a1);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 10));
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    for (int i = n - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
    }
    // Program visits blocks in `order`; each multiplies ir0 by 3 and
    // adds its index.
    std::uint64_t expected = 0;
    std::string source;
    for (int pos = 0; pos < n; ++pos) {
      const int block = order[static_cast<std::size_t>(pos)];
      expected = expected * 3 + static_cast<std::uint64_t>(block);
      source += "b" + std::to_string(block) + ":\nbegin\n  ir0 = ir0 * 3 + " +
                std::to_string(block) + ";\n";
      if (pos + 1 < n) {
        source += "  goto b" +
                  std::to_string(order[static_cast<std::size_t>(pos + 1)]) +
                  ";\n";
      } else {
        source += "  goto fin;\n";
      }
      source += "end\n";
    }
    source += "fin:\nbegin\n  SmsWrite64(8192, ir0);\n  Exit();\nend\n";
    // The entry block must be the traversal's first block: rotate the
    // text so it comes first. Simpler: prepend an entry jump.
    source = "entry:\nbegin\n  goto b" +
             std::to_string(order[0]) + ";\nend\n" + source;

    auto program = microcode::compile(source);
    sim::Simulator sim;
    trio::Router router(sim, trio::Calibration{}, 1, 2);
    router.pfe(0).set_program_factory(
        microcode::make_program_factory(program));
    std::vector<std::uint8_t> payload(16, 0);
    router.receive(
        net::Packet::make(net::build_udp_frame(
            {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
            net::Ipv4Addr::from_octets(1, 1, 1, 1),
            net::Ipv4Addr::from_octets(2, 2, 2, 2), 1, 2, payload)),
        0);
    sim.run();
    ASSERT_EQ(router.pfe(0).sms().peek_u64(8192), expected);
  }
}

}  // namespace
