// Timing-semantics tests for the PPE engine, MQSS, fabric and dispatch:
// the quantitative behaviours the calibration model promises.
#include <gtest/gtest.h>

#include "trio/router.hpp"

namespace {

/// A program that executes `n` instructions in one step and exits.
class BurnProgram : public trio::PpeProgram {
 public:
  BurnProgram(std::uint32_t n, sim::Time* done_at, sim::Simulator* sim)
      : n_(n), done_at_(done_at), sim_(sim) {}
  trio::Action step(trio::ThreadContext&) override {
    if (burned_) {
      if (done_at_ != nullptr) *done_at_ = sim_->now();
      return trio::ActExit{1};
    }
    burned_ = true;
    return trio::ActContinue{n_};
  }

 private:
  std::uint32_t n_;
  sim::Time* done_at_;
  sim::Simulator* sim_;
  bool burned_ = false;
};

class EngineTiming : public ::testing::Test {
 protected:
  EngineTiming() : router(sim, cal(), 1, 2) {}

  static trio::Calibration cal() {
    trio::Calibration c;
    c.ppes_per_pfe = 1;  // a single PPE exposes the issue bottleneck
    c.threads_per_ppe = 8;
    return c;
  }

  sim::Simulator sim;
  trio::Router router;
};

TEST_F(EngineTiming, SingleThreadLatencyIsInstructionSerial) {
  sim::Time done;
  router.pfe(0).spawn_internal(
      std::make_unique<BurnProgram>(100, &done, &sim), 0);
  sim.run();
  const trio::Calibration c = cal();
  // dispatch overhead + 100 instructions at instr_latency (+1 exit instr).
  const auto expected =
      c.dispatch_overhead.ns() + 101 * c.instr_latency.ns();
  EXPECT_NEAR(static_cast<double>(done.ns()), static_cast<double>(expected),
              static_cast<double>(c.instr_latency.ns()) * 2);
}

TEST_F(EngineTiming, ManyThreadsSaturateIssueBandwidth) {
  // 8 threads x 1000 instructions on ONE PPE: with 1 instruction issued
  // per ns, the total cannot beat 8000 ns of issue time; with 24 ns
  // per-thread latency, 8 threads pipeline to ~(8000*24/8? no—) the
  // makespan is bounded below by total_instructions * issue_interval.
  std::vector<sim::Time> done(8);
  for (int i = 0; i < 8; ++i) {
    router.pfe(0).spawn_internal(
        std::make_unique<BurnProgram>(1000, &done[static_cast<std::size_t>(i)],
                                      &sim),
        0);
  }
  sim.run();
  sim::Time last;
  for (const auto& t : done) last = std::max(last, t);
  const trio::Calibration c = cal();
  EXPECT_GE(last.ns(), 8 * 1000 * c.issue_interval.ns());
  // And it cannot be slower than fully serialised thread latency.
  EXPECT_LE(last.ns(),
            c.dispatch_overhead.ns() + 8 * 1001 * c.instr_latency.ns());
}

TEST_F(EngineTiming, ThreadSlotsBoundConcurrency) {
  // 8 thread slots; the 9th internal spawn queues until one frees.
  int spawned = 0;
  for (int i = 0; i < 9; ++i) {
    router.pfe(0).spawn_internal(
        std::make_unique<BurnProgram>(10, nullptr, &sim), 0);
    ++spawned;
  }
  EXPECT_EQ(router.pfe(0).active_threads(), 8);
  EXPECT_EQ(router.pfe(0).free_threads(), 0);
  sim.run();
  EXPECT_EQ(router.pfe(0).active_threads(), 0);
  EXPECT_EQ(spawned, 9);
}

// ---------------------------------------------------------------------------
// Sync vs async XTXN semantics

class XtxnProgram : public trio::PpeProgram {
 public:
  XtxnProgram(bool sync, sim::Time* done_at, sim::Simulator* sim)
      : sync_(sync), done_at_(done_at), sim_(sim) {}
  trio::Action step(trio::ThreadContext&) override {
    switch (stage_++) {
      case 0: {
        if (sync_) {
          trio::ActSyncXtxn rd;
          rd.req.op = trio::XtxnOp::kRead;
          rd.req.addr = 1024;
          rd.req.len = 8;
          rd.instructions = 1;
          return rd;
        }
        trio::ActAsyncXtxn wr;
        wr.req.op = trio::XtxnOp::kWrite;
        wr.req.addr = 1024;
        wr.req.data.assign(8, 1);
        wr.instructions = 1;
        return wr;
      }
      default:
        *done_at_ = sim_->now();
        return trio::ActExit{1};
    }
  }

 private:
  bool sync_;
  sim::Time* done_at_;
  sim::Simulator* sim_;
  int stage_ = 0;
};

TEST_F(EngineTiming, SyncXtxnSuspendsAsyncDoesNot) {
  sim::Time sync_done, async_done;
  router.pfe(0).spawn_internal(
      std::make_unique<XtxnProgram>(true, &sync_done, &sim), 0);
  router.pfe(0).spawn_internal(
      std::make_unique<XtxnProgram>(false, &async_done, &sim), 0);
  sim.run();
  // The sync thread waited for the ~70 ns SRAM round trip; the async
  // thread continued immediately.
  EXPECT_GT(sync_done.ns() - async_done.ns(), 50);
}

class JoinProgram : public trio::PpeProgram {
 public:
  JoinProgram(sim::Time* issued, sim::Time* joined, sim::Simulator* sim)
      : issued_(issued), joined_(joined), sim_(sim) {}
  trio::Action step(trio::ThreadContext&) override {
    switch (stage_++) {
      case 0: {
        trio::ActAsyncXtxn add;
        add.req.op = trio::XtxnOp::kAddVec32;
        add.req.addr = 0;
        add.req.data.assign(64, 1);  // 32 service cycles on bank 0
        add.instructions = 1;
        return add;
      }
      case 1:
        *issued_ = sim_->now();
        return trio::ActJoinAsync{1};
      default:
        *joined_ = sim_->now();
        return trio::ActExit{1};
    }
  }

 private:
  sim::Time* issued_;
  sim::Time* joined_;
  sim::Simulator* sim_;
  int stage_ = 0;
};

TEST_F(EngineTiming, JoinWaitsForPostedOperations) {
  sim::Time issued, joined;
  router.pfe(0).spawn_internal(
      std::make_unique<JoinProgram>(&issued, &joined, &sim), 0);
  sim.run();
  // The join resumes only after the RMW engine finished the adds and the
  // SRAM-tier reply time elapsed (~bank service + latency).
  EXPECT_GT((joined - issued).ns(), 60);
}

// ---------------------------------------------------------------------------
// MQSS constraints

TEST(Mqss, RejectsOversizedChunks) {
  sim::Simulator sim;
  trio::Calibration c;
  trio::Mqss mqss(sim, c);
  net::Packet pkt{net::Buffer(1000)};
  EXPECT_THROW(mqss.tail_read(pkt, 0, 128, {}), std::invalid_argument);
  EXPECT_THROW(mqss.tail_read(pkt, 900, 64, {}), std::out_of_range);
  EXPECT_THROW(mqss.pmem_write(512, {}), std::invalid_argument);
}

TEST(Mqss, TailReadReturnsTheRightBytes) {
  sim::Simulator sim;
  trio::Calibration c;
  trio::Mqss mqss(sim, c);
  net::Buffer frame(400);
  for (std::size_t i = 0; i < 400; ++i) {
    frame.set_u8(i, static_cast<std::uint8_t>(i));
  }
  net::Packet pkt{std::move(frame)};
  std::vector<std::uint8_t> got;
  mqss.tail_read(pkt, 10, 16,
                 [&](trio::XtxnReply r) { got = std::move(r.data); });
  sim.run();
  ASSERT_EQ(got.size(), 16u);
  // Tail offset 10 = frame byte 192 + 10.
  EXPECT_EQ(got[0], static_cast<std::uint8_t>(202));
  EXPECT_EQ(mqss.tail_bytes_read(), 16u);
}

// ---------------------------------------------------------------------------
// Fabric rate limiting

TEST(Fabric, InjectionRateBoundsThroughput) {
  sim::Simulator sim;
  trio::Calibration c;
  c.fabric_gbps = 100.0;
  trio::Fabric fabric(sim, c, 2);
  sim::Time last;
  int delivered = 0;
  // 100 frames of 1250 B at 100 Gbps: 100 ns serialization each.
  for (int i = 0; i < 100; ++i) {
    fabric.send(0, net::Packet::make(net::Buffer(1250)),
                [&](net::PacketPtr) {
                  ++delivered;
                  last = sim.now();
                });
  }
  sim.run();
  EXPECT_EQ(delivered, 100);
  EXPECT_GE(last.ns(), 100 * 100);  // at least the serialization time
  EXPECT_EQ(fabric.bytes(), 125'000u);
}

// ---------------------------------------------------------------------------
// Flow hash stability (Dispatch/Reorder contract)

TEST(FlowHash, SameTupleSameHashDifferentTupleDifferent) {
  auto frame = [](const char* src, std::uint16_t sport) {
    std::vector<std::uint8_t> payload(32, 0);
    return net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                net::Ipv4Addr::from_string(src),
                                net::Ipv4Addr::from_string("10.0.0.9"),
                                sport, 80, payload);
  };
  const auto h1 = trio::compute_flow_hash(frame("10.0.0.1", 1000));
  const auto h2 = trio::compute_flow_hash(frame("10.0.0.1", 1000));
  const auto h3 = trio::compute_flow_hash(frame("10.0.0.2", 1000));
  const auto h4 = trio::compute_flow_hash(frame("10.0.0.1", 1001));
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(h1, h4);
  EXPECT_NE(h1, 0u);  // 0 is reserved
}

TEST(FlowHash, NonIpFallsIntoConstantFlow) {
  net::Buffer junk(64);
  EXPECT_EQ(trio::compute_flow_hash(junk), 1u);
}

}  // namespace
