#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace {

TEST(Time, Arithmetic) {
  const sim::Time t(1000);
  const sim::Duration d = sim::Duration::micros(2);
  EXPECT_EQ((t + d).ns(), 3000);
  EXPECT_EQ(((t + d) - t).ns(), 2000);
  EXPECT_LT(t, t + d);
}

TEST(Time, CycleConversionIsExactAtOneGigahertz) {
  EXPECT_EQ(sim::Duration::cycles(7).ns(), 7);
  EXPECT_EQ(sim::Duration::cycles(3, 500'000'000).ns(), 6);
  // Rounds up: 3 cycles of a 2 GHz clock is 1.5 ns -> 2 ns.
  EXPECT_EQ(sim::Duration::cycles(3, 2'000'000'000).ns(), 2);
}

TEST(Time, Formatting) {
  EXPECT_EQ(sim::Duration::nanos(17).to_string(), "17ns");
  EXPECT_EQ(sim::Duration::micros(2).to_string(), "2.000us");
  EXPECT_EQ(sim::Duration::millis(5).to_string(), "5.000ms");
  EXPECT_EQ(sim::Duration::seconds(3).to_string(), "3.000s");
}

TEST(EventQueue, RunsInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(sim::Time(30), [&] { order.push_back(3); });
  q.schedule(sim::Time(10), [&] { order.push_back(1); });
  q.schedule(sim::Time(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtSameInstant) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    q.schedule(sim::Time(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  sim::EventQueue q;
  bool ran = false;
  auto id = q.schedule(sim::Time(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double-cancel reports false
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  sim::EventQueue q;
  q.schedule(sim::Time(100), [] {});
  q.pop_and_run();
  EXPECT_THROW(q.schedule(sim::Time(50), [] {}), std::logic_error);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  sim::EventQueue q;
  auto id = q.schedule(sim::Time(10), [] {});
  q.schedule(sim::Time(20), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), sim::Time(20));
}

TEST(EventQueue, CohortPopRunsWholeInstantInFifoOrder) {
  // pop_cohort_and_run() dispatches every event at the earliest instant
  // as one batch; FIFO order within the batch must match pop_and_run().
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    q.schedule(sim::Time(5), [&order, i] { order.push_back(i); });
  }
  q.schedule(sim::Time(9), [&order] { order.push_back(999); });
  const std::size_t n = q.pop_cohort_and_run();
  EXPECT_EQ(n, 50u);  // the t=9 event is not part of the t=5 cohort
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(q.pop_cohort_and_run(), 1u);
  EXPECT_EQ(order.back(), 999);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CohortMemberCanCancelUnfiredSibling) {
  // A cohort member cancelling a later member of the same batch: the
  // sibling is already extracted from the heap, so cancel() must reach
  // into the cohort buffer and the sibling must not fire.
  sim::EventQueue q;
  std::vector<int> order;
  sim::EventId victim;
  q.schedule(sim::Time(5), [&] {
    order.push_back(0);
    EXPECT_TRUE(q.cancel(victim));
    EXPECT_FALSE(q.cancel(victim));  // double-cancel still reports false
  });
  victim = q.schedule(sim::Time(5), [&] { order.push_back(1); });
  q.schedule(sim::Time(5), [&] { order.push_back(2); });
  q.pop_cohort_and_run();
  EXPECT_EQ(order, (std::vector<int>{0, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CohortFollowUpsAtSameInstantRunAfterTheBatch) {
  // Same-instant follow-ups scheduled by cohort members run within the
  // same pop_cohort_and_run() call, after all original members — the
  // band rule's "local events first, FIFO including cascades".
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(sim::Time(5), [&] {
    order.push_back(0);
    q.schedule(sim::Time(5), [&] {
      order.push_back(10);
      q.schedule(sim::Time(5), [&] { order.push_back(20); });
    });
  });
  q.schedule(sim::Time(5), [&] { order.push_back(1); });
  const std::size_t n = q.pop_cohort_and_run();
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 20}));
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  sim::Simulator s;
  sim::Time seen;
  s.schedule_in(sim::Duration::micros(5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, sim::Time(5000));
  EXPECT_EQ(s.now(), sim::Time(5000));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  sim::Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) s.schedule_in(sim::Duration(1), chain);
  };
  s.schedule_in(sim::Duration(1), chain);
  s.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), sim::Time(10));
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  sim::Simulator s;
  bool late_ran = false;
  s.schedule_in(sim::Duration(100), [&] { late_ran = true; });
  s.run_until(sim::Time(50));
  EXPECT_EQ(s.now(), sim::Time(50));
  EXPECT_FALSE(late_ran);
  s.run_until(sim::Time(200));
  EXPECT_TRUE(late_ran);
}

TEST(Rng, DeterministicForSeed) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBoundsRespected) {
  sim::Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = r.uniform(0.5, 2.0);
    EXPECT_GE(v, 0.5);
    EXPECT_LT(v, 2.0);
  }
}

TEST(Rng, NextBelowUnbiasedEnough) {
  sim::Rng r(9);
  std::array<int, 6> hist{};
  for (int i = 0; i < 60'000; ++i) ++hist[r.next_below(6)];
  for (int h : hist) EXPECT_NEAR(h, 10'000, 500);
}

TEST(Rng, BernoulliMatchesProbability) {
  sim::Rng r(11);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.bernoulli(0.16) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.16, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  sim::Rng r(13);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / 100'000.0, 5.0, 0.15);
}

TEST(Stats, SummaryMoments) {
  sim::Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Stats, Percentiles) {
  sim::Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100);
}

TEST(Stats, EmptySamplesSafe) {
  sim::Samples s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

}  // namespace
