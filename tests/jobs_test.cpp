// Multi-tenant job subsystem acceptance (docs/jobs.md): the jobs DSL,
// admission-time SMS quotas, hash-partition isolation, weighted fairness
// under an aggressor, bit-identity of every tenant's result versus its
// solo run, tenant-scoped faults and teardown, and spine failover with
// three live tenants.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/tenant.hpp"
#include "recovery/recovery.hpp"
#include "trio/hash_table.hpp"

namespace {

using cluster::Cluster;
using cluster::ClusterSpec;

sim::Time at_us(std::int64_t v) {
  return sim::Time(sim::Duration::micros(v).ns());
}

ClusterSpec small_spec(bool backup = false) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 1024;
  spec.backup_spine = backup;
  return spec;
}

jobs::TenantSpec allreduce_tenant(std::uint8_t id, std::uint32_t weight = 1) {
  jobs::TenantSpec t;
  t.id = id;
  t.kind = jobs::TenantKind::kAllreduce;
  t.weight = weight;
  t.grads = 128 * 32;  // 32 blocks per worker
  t.window = 64;
  t.block_cnt_max = 256;
  return t;
}

jobs::TenantSpec aggressor_tenant(std::uint8_t id, double load) {
  jobs::TenantSpec t;
  t.id = id;
  t.kind = jobs::TenantKind::kBestEffort;
  t.weight = 1;
  t.load = load;
  return t;
}

/// The tenant's run on an otherwise idle cluster — the solo baseline.
jobs::MultiTenantRun run_solo(const jobs::TenantSpec& tenant) {
  ClusterSpec spec = small_spec();
  Cluster cl(spec);
  jobs::JobManager mgr(cl);
  EXPECT_TRUE(mgr.admit(tenant).admitted);
  return mgr.run(/*gen_id=*/1, at_us(50'000));
}

double tenant_p99_us(jobs::JobManager& mgr, jobs::TenantId id, int workers) {
  sim::Samples all;
  for (int w = 0; w < workers; ++w) {
    for (double v : mgr.tenant_worker(id, w)->block_latency_us().values()) {
      all.add(v);
    }
  }
  return all.percentile(99);
}

// --- Jobs DSL ---------------------------------------------------------------

TEST(JobsDsl, ParsesTenantsAndDefaults) {
  const auto spec = jobs::JobsSpec::parse(
      "# victim and an aggressor\n"
      "tenant 1 allreduce weight=4 grads=8192 window=32 blocks=128 sms=96M\n"
      "\n"
      "tenant 3 besteffort load=0.9   # noisy neighbour\n");
  ASSERT_EQ(spec.size(), 2u);
  EXPECT_EQ(spec.tenants[0].id, 1);
  EXPECT_EQ(spec.tenants[0].kind, jobs::TenantKind::kAllreduce);
  EXPECT_EQ(spec.tenants[0].weight, 4u);
  EXPECT_EQ(spec.tenants[0].grads, 8192u);
  EXPECT_EQ(spec.tenants[0].window, 32u);
  EXPECT_EQ(spec.tenants[0].block_cnt_max, 128);
  EXPECT_EQ(spec.tenants[0].sms_quota_bytes, 96ull << 20);
  EXPECT_EQ(spec.tenants[1].id, 3);
  EXPECT_EQ(spec.tenants[1].kind, jobs::TenantKind::kBestEffort);
  EXPECT_DOUBLE_EQ(spec.tenants[1].load, 0.9);
  EXPECT_EQ(spec.tenants[1].sms_quota_bytes, 0u);  // unlimited
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    jobs::JobsSpec::parse(text);
    FAIL() << "expected a parse error containing \"" << needle << "\"";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(JobsDsl, RejectsMalformedWithLineAndColumn) {
  // Same line/column error style as the faults DSL.
  expect_parse_error("job 1 allreduce\n", "jobs DSL line 1 col 1");
  expect_parse_error("tenant 1 allreduce\ntenant 2 bulk\n",
                     "jobs DSL line 2 col 10");
  expect_parse_error("tenant 0 allreduce\n", "tenant id must be in 1..255");
  expect_parse_error("tenant 1 allreduce\ntenant 1 besteffort\n",
                     "duplicate tenant id 1");
  expect_parse_error("tenant 1 allreduce speed=9\n", "unknown key \"speed\"");
  expect_parse_error("tenant 1 besteffort load=1.5\n",
                     "load must be in (0, 1]");
  expect_parse_error("tenant 1 allreduce sms=banana\n", "col 24");
}

// --- Admission --------------------------------------------------------------

TEST(Admission, RejectsOverQuotaAtAdmissionTimeNotMidRun) {
  ClusterSpec spec = small_spec();
  Cluster cl(spec);
  jobs::JobManager mgr(cl);

  // 256 blocks * (64 B record + 4 KiB buffer) per PFE never fits in 512K.
  jobs::TenantSpec greedy = allreduce_tenant(2);
  greedy.sms_quota_bytes = 512 << 10;
  const auto rejected = mgr.admit(greedy);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_NE(rejected.reason.find("exceeds SMS quota"), std::string::npos);
  // The cluster is untouched: no job record anywhere, nothing charged.
  for (auto* app : cl.apps()) EXPECT_FALSE(app->has_job(2));
  EXPECT_EQ(cl.leaf(0).pfe(0).sms().tenant_bytes_used(2), 0u);
  EXPECT_TRUE(mgr.admitted().empty());

  // With a sufficient quota the same tenant admits, its worst case is
  // reserved up front, and the run completes without ever hitting the
  // quota mid-flight.
  jobs::TenantSpec fits = greedy;
  fits.sms_quota_bytes = 2ull << 20;
  ASSERT_TRUE(mgr.admit(fits).admitted);
  const auto used = cl.leaf(0).pfe(0).sms().tenant_bytes_used(2);
  EXPECT_GT(used, 0u);
  EXPECT_LE(used, fits.sms_quota_bytes);
  const auto run = mgr.run(1, at_us(50'000));
  ASSERT_NE(run.tenant(2), nullptr);
  EXPECT_EQ(run.tenant(2)->finished, cl.num_workers());
}

TEST(Admission, RejectsDuplicateAndReservedIds) {
  Cluster cl(small_spec());
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(2)).admitted);
  EXPECT_FALSE(mgr.admit(allreduce_tenant(2)).admitted);
  jobs::TenantSpec zero = allreduce_tenant(2);
  zero.id = 0;
  EXPECT_FALSE(mgr.admit(zero).admitted);
}

// --- Hash-partition isolation ----------------------------------------------

TEST(Isolation, HashPartitionsAreDisjointPerTenant) {
  Cluster cl(small_spec());
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(2)).admitted);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(3)).admitted);
  mgr.enable_isolation(/*partitions=*/8);

  auto& table = cl.leaf(0).pfe(0).hash_table();
  const auto [lo2, hi2] = table.partition_range(2);
  const auto [lo3, hi3] = table.partition_range(3);
  EXPECT_TRUE(hi2 <= lo3 || hi3 <= lo2) << "tenant slices overlap";

  // Every key a tenant can emit (its job id rides the top byte) lands in
  // its own slice, no matter the block id.
  for (std::uint64_t block = 0; block < 4096; block += 97) {
    const std::uint64_t key2 = (2ull << 48) | (1ull << 32) | block;
    const std::uint64_t key3 = (3ull << 48) | (1ull << 32) | block;
    const auto b2 = table.bucket_index(key2);
    const auto b3 = table.bucket_index(key3);
    EXPECT_GE(b2, lo2);
    EXPECT_LT(b2, hi2);
    EXPECT_GE(b3, lo3);
    EXPECT_LT(b3, hi3);
  }
}

// --- Fairness under an aggressor -------------------------------------------

TEST(Isolation, VictimP99BoundedUnderAggressor) {
  const jobs::TenantSpec victim = allreduce_tenant(2, /*weight=*/4);

  // Solo baseline.
  double solo_p99 = 0;
  {
    ClusterSpec spec = small_spec();
    Cluster cl(spec);
    jobs::JobManager mgr(cl);
    ASSERT_TRUE(mgr.admit(victim).admitted);
    const auto run = mgr.run(1, at_us(50'000));
    ASSERT_EQ(run.tenant(2)->finished, cl.num_workers());
    solo_p99 = tenant_p99_us(mgr, 2, cl.num_workers());
    ASSERT_GT(solo_p99, 0.0);
  }

  // Same victim beside a 90%-load aggressor, isolation on: MQSS weighted
  // queueing must keep the victim's p99 within 2x of its solo run.
  ClusterSpec spec = small_spec();
  Cluster cl(spec);
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(victim).admitted);
  ASSERT_TRUE(mgr.admit(aggressor_tenant(3, 0.9)).admitted);
  mgr.enable_isolation();
  const auto run = mgr.run(1, at_us(50'000));
  ASSERT_EQ(run.tenant(2)->finished, cl.num_workers());
  const double noisy_p99 = tenant_p99_us(mgr, 2, cl.num_workers());
  EXPECT_LE(noisy_p99, 2.0 * solo_p99)
      << "victim p99 " << noisy_p99 << "us vs solo " << solo_p99 << "us";
}

// --- Bit-identity versus solo runs -----------------------------------------

TEST(MultiTenant, EachTenantBitIdenticalToItsSoloRun) {
  const auto solo2 = run_solo(allreduce_tenant(2));
  const auto solo3 = run_solo(allreduce_tenant(3));

  Cluster cl(small_spec());
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(2)).admitted);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(3)).admitted);
  ASSERT_TRUE(mgr.admit(aggressor_tenant(4, 0.5)).admitted);
  mgr.enable_isolation();
  const auto run = mgr.run(1, at_us(50'000));

  for (int id : {2, 3}) {
    const auto* tr = run.tenant(jobs::TenantId(id));
    ASSERT_NE(tr, nullptr);
    ASSERT_EQ(tr->finished, cl.num_workers()) << "tenant " << id;
  }
  // Sharing the fabric with a neighbour and an aggressor — with
  // partitioned buckets and weighted queues — must not change a single
  // result bit.
  EXPECT_TRUE(
      cluster::bit_identical(solo2.tenants[0].results, run.tenant(2)->results));
  EXPECT_TRUE(
      cluster::bit_identical(solo3.tenants[0].results, run.tenant(3)->results));
  EXPECT_EQ(solo2.tenants[0].digest(), run.tenant(2)->digest());
  EXPECT_EQ(solo3.tenants[0].digest(), run.tenant(3)->digest());
}

// --- Determinism ------------------------------------------------------------

TEST(MultiTenant, ThreeTenantGoldenDigestIsDeterministic) {
  auto once = [] {
    Cluster cl(small_spec());
    jobs::JobManager mgr(cl);
    EXPECT_TRUE(mgr.admit(allreduce_tenant(2, 4)).admitted);
    EXPECT_TRUE(mgr.admit(allreduce_tenant(3, 2)).admitted);
    EXPECT_TRUE(mgr.admit(aggressor_tenant(4, 0.9)).admitted);
    mgr.enable_isolation();
    const auto run = mgr.run(1, at_us(50'000));
    std::vector<std::uint64_t> digests;
    for (const auto& tr : run.tenants) digests.push_back(tr.digest());
    return digests;
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a, b);
}

// --- Tenant-scoped faults ---------------------------------------------------

TEST(Faults, TenantQualifiedCrashHitsOnlyThatTenant) {
  ClusterSpec spec = small_spec();
  spec.host_link.gbps = 10.0;  // stretch the run past the crash instant
  Cluster cl(spec);
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(2)).admitted);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(3)).admitted);

  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  mgr.bind_fault_injector(injector);
  injector.arm(faults::FaultSchedule::parse("at 30us crash worker:1 tenant=2"));

  const auto run = mgr.run(1, at_us(10'000));
  // Tenant 2 lost one worker; tenant 3 is untouched.
  EXPECT_EQ(run.tenant(2)->finished, cl.num_workers() - 1);
  EXPECT_EQ(run.tenant(3)->finished, cl.num_workers());
  EXPECT_TRUE(mgr.tenant_worker(2, 1)->crashed());
  EXPECT_FALSE(mgr.tenant_worker(3, 1)->crashed());

  bool logged = false;
  for (const auto& entry : injector.log()) {
    if (entry.what.find("tenant=2") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged);
}

TEST(Faults, TenantQualifierRequiresResolver) {
  Cluster cl(small_spec());
  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  injector.arm(faults::FaultSchedule::parse("at 5us crash worker:0 tenant=7"));
  EXPECT_THROW(cl.simulator().run_until(at_us(10)), std::logic_error);
}

TEST(Faults, DslRejectsTenantOnNonWorkerVerbs) {
  try {
    faults::FaultSchedule::parse("at 5us stall leaf:0 for 1us tenant=2");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tenant="), std::string::npos);
  }
}

// --- Tenant-scoped teardown -------------------------------------------------

TEST(Teardown, RemovesOneTenantLeavesOthersRunning) {
  ClusterSpec spec = small_spec();
  spec.host_link.gbps = 10.0;
  Cluster cl(spec);
  jobs::JobManager mgr(cl);
  jobs::TenantSpec quota2 = allreduce_tenant(2);
  quota2.sms_quota_bytes = 4ull << 20;
  ASSERT_TRUE(mgr.admit(quota2).admitted);
  ASSERT_TRUE(mgr.admit(allreduce_tenant(3)).admitted);

  cl.simulator().schedule_at(at_us(30), [&] { mgr.teardown(2); });
  const auto run = mgr.run(1, at_us(10'000));

  EXPECT_LT(run.tenant(2)->finished, cl.num_workers());
  EXPECT_EQ(run.tenant(3)->finished, cl.num_workers());
  for (auto* app : cl.apps()) {
    EXPECT_FALSE(app->has_job(2));
    EXPECT_TRUE(app->has_job(3));
  }
  EXPECT_EQ(cl.leaf(0).pfe(0).sms().tenant_bytes_used(2), 0u);
  EXPECT_EQ(mgr.admitted(), std::vector<jobs::TenantId>{3});
}

// --- Spine failover with three live tenants ---------------------------------

TEST(Failover, ThreeLiveTenantsAllRehomeAndFinishBitIdentical) {
  const auto solo2 = run_solo(allreduce_tenant(2));
  const auto solo3 = run_solo(allreduce_tenant(3));
  const auto solo4 = run_solo(allreduce_tenant(4));

  ClusterSpec spec = small_spec(/*backup=*/true);
  spec.host_link.gbps = 10.0;
  Cluster cl(spec);
  jobs::JobManager mgr(cl);
  for (std::uint8_t id : {2, 3, 4}) {
    ASSERT_TRUE(mgr.admit(allreduce_tenant(id)).admitted);
    for (int w = 0; w < cl.num_workers(); ++w) {
      mgr.tenant_worker(id, w)->enable_hardened_retransmit(
          sim::Duration::millis(1), /*retry_budget=*/50,
          sim::Duration::millis(8));
    }
  }

  recovery::RecoveryConfig rc;
  rc.heartbeat.period = sim::Duration::micros(20);
  rc.heartbeat.check_period = sim::Duration::micros(10);
  rc.heartbeat.phi_threshold = 4.0;
  recovery::RecoveryManager rmgr(cl, rc);
  rmgr.start();

  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  injector.arm(faults::FaultSchedule::parse("at 60us kill spine"));

  const auto run = mgr.run(1, at_us(80'000));
  rmgr.stop();

  EXPECT_EQ(rmgr.failovers(), 1u);
  EXPECT_TRUE(cl.on_backup_spine());
  // The failover re-homed *every* tenant: all three finish on the backup
  // spine and every result is bit-identical to its solo run.
  for (int id : {2, 3, 4}) {
    ASSERT_EQ(run.tenant(jobs::TenantId(id))->finished, cl.num_workers())
        << "tenant " << id;
  }
  EXPECT_TRUE(
      cluster::bit_identical(solo2.tenants[0].results, run.tenant(2)->results));
  EXPECT_TRUE(
      cluster::bit_identical(solo3.tenants[0].results, run.tenant(3)->results));
  EXPECT_TRUE(
      cluster::bit_identical(solo4.tenants[0].results, run.tenant(4)->results));
}

}  // namespace
