// Chaos fuzzing pipeline (src/vigil/, docs/vigil.md).
//
// Covers the seeded scenario generator (determinism, DSL round-trip,
// validity of everything it emits), schedule validation rejections, the
// checked-in fuzz corpus (every schedule must replay with zero invariant
// violations — the tier-1 robustness gate), the ddmin shrinker against a
// synthetic oracle, and the full planted-bug pipeline: a historical
// wedge re-introduced, caught by the watchdog, and shrunk to a repro of
// a handful of events.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faults/schedule.hpp"
#include "vigil/generator.hpp"
#include "vigil/runner.hpp"
#include "vigil/shrink.hpp"

namespace {

using faults::FaultSchedule;
using vigil::Profile;

const Profile kProfiles[] = {Profile::kFailover, Profile::kJobs,
                             Profile::kNetRpc, Profile::kFluid};

std::string corpus_path(const std::string& file) {
  return std::string(TRIO_SOURCE_DIR) + "/tests/corpus/" + file;
}

std::string corpus_file(Profile profile, int seed) {
  std::ostringstream os;
  os << vigil::profile_name(profile) << "-seed" << seed << ".faults";
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- Generator -------------------------------------------------------------

TEST(Generator, SameSeedSameSchedule) {
  for (Profile p : kProfiles) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const FaultSchedule a = vigil::generate(seed, p);
      const FaultSchedule b = vigil::generate(seed, p);
      EXPECT_EQ(a.to_dsl(), b.to_dsl())
          << vigil::profile_name(p) << " seed " << seed;
    }
  }
}

TEST(Generator, DistinctSeedsExploreDistinctSchedules) {
  // Not a tautology — a broken PRNG hookup would collapse every seed to
  // one schedule. A handful of distinct seeds must differ somewhere.
  int distinct = 0;
  const std::string first = vigil::generate(1, Profile::kFailover).to_dsl();
  for (std::uint64_t seed = 2; seed <= 16; ++seed) {
    if (vigil::generate(seed, Profile::kFailover).to_dsl() != first) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 10);
}

TEST(Generator, EverySchedulePassesValidateAndRoundTripsThroughDsl) {
  for (Profile p : kProfiles) {
    const vigil::ScenarioShape shape = vigil::profile_shape(p);
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      const FaultSchedule s = vigil::generate(seed, p);
      EXPECT_GE(s.size(), 1u);
      // Contract: generated schedules are always valid...
      EXPECT_NO_THROW(s.validate(&shape.tenants))
          << vigil::profile_name(p) << " seed " << seed;
      // ...and survive a .faults round trip bit-identically, so a
      // written repro replays the exact same scenario.
      const FaultSchedule reparsed = FaultSchedule::parse(s.to_dsl());
      EXPECT_EQ(s.to_dsl(), reparsed.to_dsl())
          << vigil::profile_name(p) << " seed " << seed;
    }
  }
}

// --- Schedule validation rejections ---------------------------------------

TEST(Validate, RejectsUndeclaredTenant) {
  const FaultSchedule s =
      FaultSchedule::parse("at 10us drop-buckets leaf:0 tenant=9\n");
  const std::vector<int> declared = {1, 2};
  try {
    s.validate(&declared);
    FAIL() << "undeclared tenant accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tenant=9"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(Validate, RejectsUnpairedRevive) {
  const FaultSchedule s = FaultSchedule::parse("at 10us revive leaf:0\n");
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Validate, RejectsOverlappingKillWindows) {
  const FaultSchedule s = FaultSchedule::parse(
      "at 10us kill leaf:0\n"
      "at 20us kill leaf:0\n"
      "at 30us revive leaf:0\n");
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Validate, RejectsRestartWithNoOpenCrash) {
  const FaultSchedule s = FaultSchedule::parse("at 10us restart worker:1\n");
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Validate, AcceptsPairedWindows) {
  const FaultSchedule s = FaultSchedule::parse(
      "at 10us kill leaf:0\n"
      "at 30us revive leaf:0\n"
      "at 10us crash worker:1\n"
      "at 40us restart worker:1\n");
  EXPECT_NO_THROW(s.validate());
}

// --- The checked-in corpus -------------------------------------------------

TEST(Corpus, CorpusMatchesGenerator) {
  // The corpus is a snapshot of generate(seed, profile); this pins the
  // two together so a grammar change forces a corpus regeneration (the
  // MANIFEST documents how).
  for (Profile p : kProfiles) {
    for (int seed = 1; seed <= 4; ++seed) {
      const std::string text = read_file(corpus_path(corpus_file(p, seed)));
      const FaultSchedule checked_in = FaultSchedule::parse(text);
      const FaultSchedule generated =
          vigil::generate(std::uint64_t(seed), p);
      EXPECT_EQ(checked_in.to_dsl(), generated.to_dsl())
          << corpus_file(p, seed) << " drifted from the generator; "
          << "regenerate per tests/corpus/MANIFEST";
    }
  }
}

TEST(Corpus, CorpusReplaysClean) {
  // The robustness gate: every corpus schedule must converge with zero
  // invariant violations on its profile's canonical topology.
  for (Profile p : kProfiles) {
    for (int seed = 1; seed <= 4; ++seed) {
      const FaultSchedule s = FaultSchedule::parse(
          read_file(corpus_path(corpus_file(p, seed))));
      vigil::RunConfig config;
      config.profile = p;
      config.seed = std::uint64_t(seed);
      const vigil::RunReport rep = vigil::run_schedule(config, s);
      EXPECT_TRUE(rep.converged)
          << corpus_file(p, seed) << ": " << rep.finished << "/"
          << rep.expected << " finished, " << rep.crashed << " crashed";
      for (const vigil::Violation& v : rep.violations) {
        ADD_FAILURE() << corpus_file(p, seed) << ": " << v.invariant
                      << " at " << v.at.to_string() << ": " << v.detail;
      }
    }
  }
}

// --- Shrinker --------------------------------------------------------------

TEST(Shrink, DdminFindsTheOneGuiltyEvent) {
  // Synthetic oracle: the violation is "the schedule stalls leaf 1".
  // Buried among 7 innocent events, ddmin must isolate exactly it.
  FaultSchedule s;
  s.flap(sim::Time() + sim::Duration::micros(10),
         FaultSchedule::host_link(0), sim::Duration::micros(50));
  s.iid_loss(sim::Time() + sim::Duration::micros(20),
             FaultSchedule::fabric_link(0), 0.1,
             sim::Duration::micros(200), /*seed=*/7);
  s.crash(sim::Time() + sim::Duration::micros(30), /*worker=*/1);
  s.restart(sim::Time() + sim::Duration::micros(90), /*worker=*/1);
  s.stall(sim::Time() + sim::Duration::micros(40),
          FaultSchedule::leaf_router(1), sim::Duration::micros(80));
  s.kill(sim::Time() + sim::Duration::micros(50),
         FaultSchedule::leaf_router(0));
  s.revive(sim::Time() + sim::Duration::micros(100),
           FaultSchedule::leaf_router(0));

  int calls = 0;
  const vigil::Oracle oracle = [&](const FaultSchedule& candidate) {
    ++calls;
    // Candidates must always be semantically valid (repaired pairs).
    candidate.validate();
    for (const faults::FaultEvent& e : candidate.events()) {
      if (e.kind == faults::FaultKind::kRouterStall &&
          e.target.kind == faults::TargetKind::kLeafRouter &&
          e.target.index == 1) {
        return true;
      }
    }
    return false;
  };
  const vigil::ShrinkResult result = vigil::shrink(s, oracle);
  EXPECT_TRUE(result.reduced);
  ASSERT_EQ(result.schedule.size(), 1u);
  EXPECT_EQ(result.schedule.events()[0].kind, faults::FaultKind::kRouterStall);
  EXPECT_EQ(result.oracle_calls, calls);
}

TEST(Shrink, NarrowsWindowsAndLowersIntensity) {
  FaultSchedule s;
  s.iid_loss(sim::Time() + sim::Duration::micros(10),
             FaultSchedule::host_link(0), 0.2, sim::Duration::millis(4),
             /*seed=*/3);
  const vigil::Oracle oracle = [](const FaultSchedule& candidate) {
    return !candidate.empty();  // any loss at all still "violates"
  };
  const vigil::ShrinkResult result = vigil::shrink(s, oracle);
  ASSERT_EQ(result.schedule.size(), 1u);
  const faults::FaultEvent& e = result.schedule.events()[0];
  EXPECT_LT(e.duration.ns(), sim::Duration::millis(4).ns());
  EXPECT_LT(e.probability, 0.2);
  EXPECT_GE(e.probability, 0.01);
}

TEST(Shrink, RespectsOracleBudget) {
  FaultSchedule s;
  for (int i = 0; i < 8; ++i) {
    s.flap(sim::Time() + sim::Duration::micros(10 * (i + 1)),
           FaultSchedule::host_link(i % 4), sim::Duration::micros(50));
  }
  int calls = 0;
  const vigil::Oracle oracle = [&](const FaultSchedule&) {
    ++calls;
    return true;
  };
  vigil::ShrinkConfig config;
  config.max_oracle_calls = 5;
  vigil::shrink(s, oracle, config);
  EXPECT_LE(calls, 5);
}

// --- Planted bug: the pipeline end to end ----------------------------------

TEST(PlantedBug, CaughtByWatchdogAndShrunkToTinyRepro) {
  // Seed 16 of the failover grammar permanently kills an aggregation
  // path; with the give-up path disabled (the re-introduced historical
  // wedge) workers stall forever and the watchdog trips.
  vigil::RunConfig config;
  config.profile = Profile::kFailover;
  config.seed = 16;
  config.plant_wedge_bug = true;

  const vigil::RunReport report = vigil::run_scenario(config);
  ASSERT_FALSE(report.ok()) << "planted bug did not reproduce";

  const vigil::Oracle oracle = [&](const FaultSchedule& candidate) {
    return !vigil::run_schedule(config, candidate).ok();
  };
  const vigil::ShrinkResult result = vigil::shrink(report.schedule, oracle);
  EXPECT_TRUE(result.reduced);
  EXPECT_LE(result.schedule.size(), 5u);  // the acceptance bar
  // The repro is replayable: still valid, still violating...
  EXPECT_NO_THROW(result.schedule.validate());
  EXPECT_FALSE(vigil::run_schedule(config, result.schedule).ok());
  // ...and the bug is really the *absence of give-up*: the same minimal
  // schedule on the fixed runtime completes cleanly degraded.
  vigil::RunConfig fixed = config;
  fixed.plant_wedge_bug = false;
  const vigil::RunReport healthy =
      vigil::run_schedule(fixed, result.schedule);
  EXPECT_TRUE(healthy.ok());
}

}  // namespace
