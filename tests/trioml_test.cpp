#include <gtest/gtest.h>

#include "trioml/records.hpp"
#include "trioml/testbed.hpp"
#include "trioml/wire_format.hpp"

namespace {

using namespace trioml;

// ---------------------------------------------------------------------------
// Wire format (Fig 7/8)

TEST(WireFormat, HeaderBitExactRoundTrip) {
  TrioMlHeader h;
  h.job_id = 7;
  h.block_id = 0xdeadbeef;
  h.age_op = 0xa;
  h.final_block = true;
  h.degraded = true;
  h.src_id = 42;
  h.src_cnt = 6;
  h.gen_id = 0x1234;
  h.grad_cnt = 1024;

  net::Buffer buf(TrioMlHeader::kSize);
  h.write(buf, 0);
  const auto p = TrioMlHeader::parse(buf, 0);
  EXPECT_EQ(p.job_id, 7);
  EXPECT_EQ(p.block_id, 0xdeadbeefu);
  EXPECT_EQ(p.age_op, 0xa);
  EXPECT_TRUE(p.final_block);
  EXPECT_TRUE(p.degraded);
  EXPECT_EQ(p.src_id, 42);
  EXPECT_EQ(p.src_cnt, 6);
  EXPECT_EQ(p.gen_id, 0x1234);
  EXPECT_EQ(p.grad_cnt, 1024);
}

TEST(WireFormat, HeaderIsTwelveBytes) {
  EXPECT_EQ(TrioMlHeader::kSize, 12u);
  EXPECT_EQ(kGradOff, 54u);  // 14 + 20 + 8 + 12
}

TEST(WireFormat, GradCntLimitedTo12Bits) {
  TrioMlHeader h;
  h.grad_cnt = 5000;
  net::Buffer buf(TrioMlHeader::kSize);
  EXPECT_THROW(h.write(buf, 0), std::invalid_argument);
}

TEST(WireFormat, FrameCarriesGradientsLittleEndian) {
  std::vector<std::uint32_t> grads{1, 2, 0xffffffff};
  TrioMlHeader h;
  h.job_id = 1;
  auto frame = build_aggregation_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                       net::Ipv4Addr::from_string("10.0.0.1"),
                                       net::Ipv4Addr::from_string("10.0.0.254"),
                                       20000, h, grads);
  EXPECT_EQ(frame.size(), kGradOff + 12);
  EXPECT_EQ(read_gradient(frame, 0), 1u);
  EXPECT_EQ(read_gradient(frame, 2), 0xffffffffu);
  const auto parsed = TrioMlHeader::parse(frame, kTrioMlHdrOff);
  EXPECT_EQ(parsed.grad_cnt, 3);
  const auto udp = net::UdpHeader::parse(frame, net::UdpFrameLayout::kUdpOff);
  EXPECT_EQ(udp.dst_port, kTrioMlUdpPort);
}

TEST(WireFormat, QuantizeRoundTrip) {
  for (float v : {0.0f, 1.5f, -3.25f, 0.0001f, -123.456f}) {
    EXPECT_NEAR(dequantize(quantize(v)), v, 1e-4);
  }
  // Saturation instead of overflow.
  EXPECT_EQ(quantize(1e9f), 2147483647);
  EXPECT_EQ(quantize(-1e9f), -2147483647 - 1);
}

TEST(WireFormat, QuantizedSumMatchesFloatSum) {
  // The in-network int32 sum of quantized values approximates the float
  // sum (the ATP scaling argument).
  std::vector<float> vals{0.5f, -0.25f, 1.75f, 0.125f, -1.0f, 0.333f};
  std::int32_t sum = 0;
  float fsum = 0;
  for (float v : vals) {
    sum += quantize(v);
    fsum += v;
  }
  EXPECT_NEAR(dequantize(sum), fsum, 1e-3);
}

// ---------------------------------------------------------------------------
// Records (Fig 17/18)

TEST(Records, JobRecordIs58BytesAndRoundTrips) {
  JobRecord r;
  r.block_curr_cnt = 3;
  r.block_cnt_max = 4095;
  r.block_grad_max = 1024;
  r.block_exp = 10;
  r.block_total_cnt = 123456;
  r.out_src_addr = 0x0a0000fe;
  r.out_dst_addr = 0xef000001;
  r.out_nh_addr = 17;
  r.out_src_id = 2;
  r.src_cnt = 6;
  r.src_mask[0] = 0x3f;
  r.src_mask[3] = 0xffull << 32;

  const auto bytes = r.pack();
  EXPECT_EQ(bytes.size(), JobRecord::kSize);
  const auto u = JobRecord::unpack(bytes);
  EXPECT_EQ(u.block_curr_cnt, 3);
  EXPECT_EQ(u.block_cnt_max, 4095);
  EXPECT_EQ(u.block_grad_max, 1024);
  EXPECT_EQ(u.block_exp, 10);
  EXPECT_EQ(u.block_total_cnt, 123456u);
  EXPECT_EQ(u.out_src_addr, 0x0a0000feu);
  EXPECT_EQ(u.out_dst_addr, 0xef000001u);
  EXPECT_EQ(u.out_nh_addr, 17u);
  EXPECT_EQ(u.out_src_id, 2);
  EXPECT_EQ(u.src_cnt, 6);
  EXPECT_EQ(u.src_mask[0], 0x3fu);
  EXPECT_EQ(u.src_mask[3], 0xffull << 32);
}

TEST(Records, BlockRecordIs58BytesAndRoundTrips) {
  BlockRecord r;
  r.block_exp = 10;
  r.block_age = 1;
  r.block_start_time = 0x123456789abcdefull;
  r.job_ctx_paddr = 4096;
  r.aggr_paddr = 1 << 22;
  r.grad_cnt = 1024;
  r.rcvd_cnt = 5;
  r.rcvd_mask[0] = 0x1f;

  const auto bytes = r.pack();
  EXPECT_EQ(bytes.size(), BlockRecord::kSize);
  const auto u = BlockRecord::unpack(bytes);
  EXPECT_EQ(u.block_exp, 10);
  EXPECT_EQ(u.block_age, 1);
  EXPECT_EQ(u.block_start_time, 0x123456789abcdefull);
  EXPECT_EQ(u.job_ctx_paddr, 4096u);
  EXPECT_EQ(u.aggr_paddr, 1u << 22);
  EXPECT_EQ(u.grad_cnt, 1024);
  EXPECT_EQ(u.rcvd_cnt, 5);
  EXPECT_EQ(u.rcvd_mask[0], 0x1fu);
}

TEST(Records, RcvdMaskOffsetsMatchRmwAddresses) {
  // The datapath FetchOr64s the mask in place: the packed offset must
  // match the documented constant.
  BlockRecord r;
  r.rcvd_mask[0] = 0x0123456789abcdefull;
  const auto bytes = r.pack();
  std::uint64_t mask = 0;
  for (int i = 7; i >= 0; --i) {
    mask = mask << 8 |
           bytes[BlockRecord::kRcvdMask0Off + static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(mask, 0x0123456789abcdefull);
}

TEST(Records, HashKeys) {
  const auto k = block_key(3, 9, 0x1234);
  std::uint8_t job;
  std::uint16_t gen;
  std::uint32_t block;
  split_key(k, job, gen, block);
  EXPECT_EQ(job, 3);
  EXPECT_EQ(gen, 9);
  EXPECT_EQ(block, 0x1234u);
  EXPECT_FALSE(is_job_key(k));
  EXPECT_TRUE(is_job_key(job_key(3)));
  EXPECT_NE(block_key(1, 0, 5), block_key(2, 0, 5));
  EXPECT_NE(block_key(1, 1, 5), block_key(1, 2, 5));
}

// ---------------------------------------------------------------------------
// End-to-end aggregation on the simulated testbed

std::vector<std::uint32_t> pattern(std::size_t n, std::uint32_t scale) {
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint32_t>(i) * scale + scale;
  }
  return v;
}

TEST(Aggregation, FourWorkersSumOneBlock) {
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = 256;
  Testbed tb(cfg);

  int done = 0;
  std::vector<AllreduceResult> results(4);
  for (int w = 0; w < 4; ++w) {
    tb.worker(w).start_allreduce(pattern(256, static_cast<std::uint32_t>(w + 1)),
                                 1, [&, w](AllreduceResult r) {
                                   results[static_cast<std::size_t>(w)] = std::move(r);
                                   ++done;
                                 });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 4);
  // Sum over workers of (i+1)*scale = (i+1)*(1+2+3+4); result is the
  // average = sum / 4 after dequantisation (values are raw ints here, so
  // dequantize(int sum)/4).
  for (int w = 0; w < 4; ++w) {
    const auto& r = results[static_cast<std::size_t>(w)];
    ASSERT_EQ(r.grads.size(), 256u);
    EXPECT_EQ(r.degraded_blocks, 0u);
    for (std::size_t i = 0; i < 256; ++i) {
      const float expected =
          dequantize(static_cast<std::int32_t>((i + 1) * 10)) / 4.0f;
      EXPECT_NEAR(r.grads[i], expected, 1e-6) << "gradient " << i;
    }
  }
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 1u);
  EXPECT_EQ(tb.app(0).stats().results_emitted, 1u);
}

TEST(Aggregation, MultiBlockWindowedStream) {
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = 1024;
  cfg.window = 16;
  Testbed tb(cfg);

  const std::size_t total = 1024 * 40;  // 40 blocks
  int done = 0;
  for (int w = 0; w < 4; ++w) {
    tb.worker(w).start_allreduce(pattern(total, 1), 1,
                                 [&](AllreduceResult r) {
                                   EXPECT_EQ(r.blocks, 40u);
                                   ++done;
                                 });
  }
  tb.simulator().run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 40u);
  // Slab pool fully recycled.
  EXPECT_EQ(tb.app(0).stats().out_of_slabs, 0u);
}

TEST(Aggregation, TailGradientsAggregatedCorrectly) {
  // 1024-gradient packets have most gradients in the tail — validate the
  // 64-byte tail-chunk loop end to end with asymmetric contributions.
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 1024;
  Testbed tb(cfg);

  std::vector<AllreduceResult> results(2);
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> grads(1024);
    for (std::size_t i = 0; i < grads.size(); ++i) {
      grads[i] = w == 0 ? static_cast<std::uint32_t>(i)
                        : static_cast<std::uint32_t>(1'000'000 + i);
    }
    tb.worker(w).start_allreduce(std::move(grads), 1,
                                 [&, w](AllreduceResult r) {
                                   results[static_cast<std::size_t>(w)] = std::move(r);
                                   ++done;
                                 });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 2);
  for (std::size_t i = 0; i < 1024; ++i) {
    const float expected =
        dequantize(static_cast<std::int32_t>(1'000'000 + 2 * i)) / 2.0f;
    EXPECT_NEAR(results[0].grads[i], expected, 1e-5) << i;
  }
}

TEST(Aggregation, DuplicatePacketsIgnored) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);

  // Worker 0 retransmits aggressively even though nothing is lost.
  // (Reach into config via a fresh worker-level knob: send the same
  // allreduce twice is not possible, so emulate by enabling retransmit.)
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    tb.worker(w).start_allreduce(pattern(64, 1), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  // Let one worker's packet be duplicated on the wire by injecting the
  // same frame again at the router.
  tb.simulator().run_until(sim::Time(sim::Duration::micros(2).ns()));
  tb.simulator().run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 1u);
}

TEST(Aggregation, HierarchicalAcrossPfes) {
  TestbedConfig cfg;
  cfg.num_workers = 6;
  cfg.hierarchical = true;
  cfg.grads_per_packet = 256;
  Testbed tb(cfg);

  int done = 0;
  std::vector<AllreduceResult> results(6);
  for (int w = 0; w < 6; ++w) {
    tb.worker(w).start_allreduce(pattern(256, static_cast<std::uint32_t>(w + 1)),
                                 1, [&, w](AllreduceResult r) {
                                   results[static_cast<std::size_t>(w)] = std::move(r);
                                   ++done;
                                 });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 6);
  // Sum over six workers: (i+1) * (1+..+6) = (i+1)*21, averaged over 6.
  for (std::size_t i = 0; i < 256; ++i) {
    const float expected =
        dequantize(static_cast<std::int32_t>((i + 1) * 21)) / 6.0f;
    EXPECT_NEAR(results[0].grads[i], expected, 1e-6) << i;
  }
  // First-level PFEs each completed the block, and the top level did too.
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 1u);
  EXPECT_EQ(tb.app(1).stats().blocks_completed, 1u);
  EXPECT_EQ(tb.app(3).stats().blocks_completed, 1u);
  // The fabric carried first-level results to the top PFE.
  EXPECT_GE(tb.router().fabric().packets(), 2u);
}

TEST(Aggregation, StragglerAgedOutProducesDegradedResult) {
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);
  tb.start_straggler_detection(/*threads=*/10, sim::Duration::millis(5));

  int done = 0;
  std::vector<AllreduceResult> results(4);
  for (int w = 0; w < 4; ++w) {
    if (w == 3) continue;  // worker 3 never sends: permanent straggler
    tb.worker(w).start_allreduce(pattern(64, 1), 1,
                                 [&, w](AllreduceResult r) {
                                   results[static_cast<std::size_t>(w)] = std::move(r);
                                   ++done;
                                 });
  }
  tb.simulator().run_until(sim::Time(sim::Duration::millis(50).ns()));
  ASSERT_EQ(done, 3);
  EXPECT_EQ(tb.app(0).stats().blocks_aged, 1u);
  for (int w = 0; w < 3; ++w) {
    const auto& r = results[static_cast<std::size_t>(w)];
    EXPECT_EQ(r.degraded_blocks, 1u);
    // Three of four contributed; values divided by 3, not 4.
    for (std::size_t i = 0; i < 64; ++i) {
      const float expected =
          dequantize(static_cast<std::int32_t>((i + 1) * 3)) / 3.0f;
      EXPECT_NEAR(r.grads[i], expected, 1e-6);
    }
  }
}

TEST(Aggregation, MitigationTimeWithinTwiceTimeout) {
  // Fig 14's claim: servers recover from stragglers within 2x the
  // timeout interval.
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);
  const auto timeout = sim::Duration::millis(10);
  tb.start_straggler_detection(100, timeout);

  sim::Time finished;
  int done = 0;
  tb.worker(0).start_allreduce(pattern(64, 1), 1, [&](AllreduceResult r) {
    finished = r.finish;
    ++done;
  });  // worker 1 straggles forever
  tb.simulator().run_until(sim::Time(sim::Duration::millis(100).ns()));
  ASSERT_EQ(done, 1);
  EXPECT_LE(finished.ns(), 2 * timeout.ns() + sim::Duration::millis(1).ns());
  EXPECT_GE(finished.ns(), timeout.ns() / 2);
}

TEST(Aggregation, LateStragglerPacketDroppedAfterAging) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);
  tb.start_straggler_detection(10, sim::Duration::millis(5));

  int done0 = 0;
  tb.worker(0).start_allreduce(pattern(64, 1), 1,
                               [&](AllreduceResult) { ++done0; });
  // Worker 1 wakes up long after the block aged out.
  tb.worker(1).stall_for(sim::Duration::millis(40));
  int done1 = 0;
  tb.worker(1).start_allreduce(pattern(64, 1), 1,
                               [&](AllreduceResult) { ++done1; });

  tb.simulator().run_until(sim::Time(sim::Duration::millis(30).ns()));
  EXPECT_EQ(done0, 1);  // degraded result released worker 0
  tb.simulator().run_until(sim::Time(sim::Duration::millis(200).ns()));
  // Worker 1's late packet re-creates a block that can never complete;
  // it also ages out and returns (degraded) to worker 1.
  EXPECT_EQ(done1, 1);
  EXPECT_GE(tb.app(0).stats().blocks_aged, 2u);
}

TEST(Aggregation, PacketLatencyMeasured) {
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = 1024;
  cfg.window = 1;
  Testbed tb(cfg);
  int done = 0;
  for (int w = 0; w < 4; ++w) {
    tb.worker(w).start_allreduce(pattern(1024 * 4, 1), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  EXPECT_EQ(done, 4);
  auto& lat = tb.app(0).stats().packet_latency_us;
  EXPECT_EQ(lat.count(), 16u);  // 4 workers x 4 blocks
  EXPECT_GT(lat.mean(), 1.0);   // microseconds, nontrivial
  EXPECT_LT(lat.mean(), 1000.0);
}

TEST(Aggregation, UnknownJobDropped) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  Testbed tb(cfg);

  TrioMlHeader hdr;
  hdr.job_id = 99;  // not configured
  hdr.block_id = 0;
  hdr.src_id = 0;
  hdr.grad_cnt = 4;
  std::vector<std::uint32_t> grads{1, 2, 3, 4};
  auto frame = build_aggregation_frame(
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
      net::Ipv4Addr::from_string("10.0.0.1"),
      net::Ipv4Addr::from_string("10.0.0.254"), 20000, hdr, grads);
  tb.router().receive(net::Packet::make(std::move(frame)), 0);
  tb.simulator().run();
  EXPECT_EQ(tb.app(0).stats().dropped_no_job, 1u);
  EXPECT_EQ(tb.app(0).stats().blocks_created, 0u);
}

TEST(Aggregation, OversizedBlockRejected) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;  // job limit
  Testbed tb(cfg);

  TrioMlHeader hdr;
  hdr.job_id = cfg.job_id;
  hdr.block_id = 0;
  hdr.src_id = 0;
  std::vector<std::uint32_t> grads(128, 1);  // exceeds block_grad_max
  auto frame = build_aggregation_frame(
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
      net::Ipv4Addr::from_string("10.0.0.1"),
      net::Ipv4Addr::from_string("10.0.0.254"), 20000, hdr, grads);
  tb.router().receive(net::Packet::make(std::move(frame)), 0);
  tb.simulator().run();
  EXPECT_EQ(tb.app(0).stats().dropped_no_job, 1u);
}

TEST(Aggregation, GenerationsKeptSeparate) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);

  int done = 0;
  std::vector<AllreduceResult> gen_results(2);
  tb.worker(0).start_allreduce(pattern(64, 1), /*gen=*/1,
                               [&](AllreduceResult r) {
                                 gen_results[0] = std::move(r);
                                 ++done;
                               });
  tb.worker(1).start_allreduce(pattern(64, 1), /*gen=*/1,
                               [&](AllreduceResult r) { ++done; (void)r; });
  tb.simulator().run();
  ASSERT_EQ(done, 2);
  // Second generation with different data reuses the same block ids.
  tb.worker(0).start_allreduce(pattern(64, 5), /*gen=*/2,
                               [&](AllreduceResult r) {
                                 gen_results[1] = std::move(r);
                                 ++done;
                               });
  tb.worker(1).start_allreduce(pattern(64, 5), /*gen=*/2,
                               [&](AllreduceResult) { ++done; });
  tb.simulator().run();
  ASSERT_EQ(done, 4);
  EXPECT_NEAR(gen_results[1].grads[0], 5 * gen_results[0].grads[0], 1e-5);
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 2u);
}

}  // namespace
