#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trio/calibration.hpp"
#include "trio/sms.hpp"

namespace {

class SmsTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  trio::Calibration cal;
  trio::SharedMemorySystem sms{sim, trio::Calibration{}};

  trio::XtxnReply issue_sync(trio::XtxnRequest req) {
    trio::XtxnReply out;
    bool got = false;
    sms.issue(req, [&](trio::XtxnReply r) {
      out = std::move(r);
      got = true;
    });
    sim.run();
    EXPECT_TRUE(got);
    return out;
  }
};

TEST_F(SmsTest, ReadWriteRoundTrip) {
  trio::XtxnRequest wr;
  wr.op = trio::XtxnOp::kWrite;
  wr.addr = 128;
  wr.data = {1, 2, 3, 4, 5, 6, 7, 8};
  sms.issue(wr, {});

  trio::XtxnRequest rd;
  rd.op = trio::XtxnOp::kRead;
  rd.addr = 128;
  rd.len = 8;
  const auto reply = issue_sync(rd);
  EXPECT_EQ(reply.data, wr.data);
}

TEST_F(SmsTest, CounterIncUpdatesPacketAndByteHalves) {
  trio::XtxnRequest inc;
  inc.op = trio::XtxnOp::kCounterInc;
  inc.addr = 256;
  inc.arg0 = 1500;
  sms.issue(inc, {});
  sms.issue(inc, {});
  EXPECT_EQ(sms.peek_u64(256), 2u);        // packets
  EXPECT_EQ(sms.peek_u64(256 + 8), 3000u);  // bytes
}

TEST_F(SmsTest, FetchOpsReturnOldValue) {
  sms.poke_u64(512, 0xf0);
  trio::XtxnRequest req;
  req.op = trio::XtxnOp::kFetchOr64;
  req.addr = 512;
  req.arg0 = 0x0f;
  EXPECT_EQ(issue_sync(req).value, 0xf0u);
  EXPECT_EQ(sms.peek_u64(512), 0xffu);

  req.op = trio::XtxnOp::kFetchAnd64;
  req.arg0 = 0x3c;
  EXPECT_EQ(issue_sync(req).value, 0xffu);
  EXPECT_EQ(sms.peek_u64(512), 0x3cu);

  req.op = trio::XtxnOp::kFetchXor64;
  req.arg0 = 0xff;
  issue_sync(req);
  EXPECT_EQ(sms.peek_u64(512), 0xc3u);

  req.op = trio::XtxnOp::kFetchClear64;
  req.arg0 = 0x03;
  issue_sync(req);
  EXPECT_EQ(sms.peek_u64(512), 0xc0u);

  req.op = trio::XtxnOp::kFetchSwap64;
  req.arg0 = 0x1234;
  EXPECT_EQ(issue_sync(req).value, 0xc0u);
  EXPECT_EQ(sms.peek_u64(512), 0x1234u);
}

TEST_F(SmsTest, FetchAdd32) {
  trio::XtxnRequest req;
  req.op = trio::XtxnOp::kFetchAdd32;
  req.addr = 640;
  req.arg0 = 7;
  EXPECT_EQ(issue_sync(req).value, 0u);
  EXPECT_EQ(issue_sync(req).value, 7u);
  EXPECT_EQ(sms.peek_u32(640), 14u);
}

TEST_F(SmsTest, MaskedWrite) {
  sms.poke_u64(704, 0xaaaaaaaaaaaaaaaaull);
  trio::XtxnRequest req;
  req.op = trio::XtxnOp::kMaskedWrite64;
  req.addr = 704;
  req.arg0 = 0x5555555555555555ull;  // value
  req.arg1 = 0x00000000ffffffffull;  // mask: low half only
  sms.issue(req, {});
  EXPECT_EQ(sms.peek_u64(704), 0xaaaaaaaa55555555ull);
}

TEST_F(SmsTest, AddVec32SumsGradients) {
  std::vector<std::uint8_t> grads;
  for (std::uint32_t v : {10u, 20u, 30u, 40u}) {
    for (int i = 0; i < 4; ++i) grads.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  trio::XtxnRequest req;
  req.op = trio::XtxnOp::kAddVec32;
  req.addr = 1024;
  req.data = grads;
  sms.issue(req, {});
  sms.issue(req, {});
  EXPECT_EQ(sms.peek_u32(1024), 20u);
  EXPECT_EQ(sms.peek_u32(1028), 40u);
  EXPECT_EQ(sms.peek_u32(1032), 60u);
  EXPECT_EQ(sms.peek_u32(1036), 80u);
  EXPECT_EQ(sms.add32_ops(), 8u);
}

TEST_F(SmsTest, AddVec32WrapsAround32Bits) {
  sms.poke_u32(2048, 0xffffffffu);
  trio::XtxnRequest req;
  req.op = trio::XtxnOp::kAddVec32;
  req.addr = 2048;
  req.data = {2, 0, 0, 0};
  sms.issue(req, {});
  EXPECT_EQ(sms.peek_u32(2048), 1u);  // modular arithmetic, no spill
}

TEST_F(SmsTest, PolicerConformsThenExceeds) {
  trio::PolicerConfig pc;
  pc.rate_bytes_per_sec = 1'000'000;  // 1 MB/s
  pc.burst_bytes = 3000;
  sms.configure_policer(4096, pc);

  trio::XtxnRequest req;
  req.op = trio::XtxnOp::kPolicerCheck;
  req.addr = 4096;
  req.arg0 = 1500;
  EXPECT_EQ(issue_sync(req).value, 1u);  // conform (burst)
  EXPECT_EQ(issue_sync(req).value, 1u);  // conform (burst)
  EXPECT_EQ(issue_sync(req).value, 0u);  // exceed: bucket empty
}

TEST_F(SmsTest, PolicerRefillsOverTime) {
  trio::PolicerConfig pc;
  pc.rate_bytes_per_sec = 1'000'000'000;  // 1 GB/s
  pc.burst_bytes = 1000;
  sms.configure_policer(8192, pc);

  trio::XtxnRequest req;
  req.op = trio::XtxnOp::kPolicerCheck;
  req.addr = 8192;
  req.arg0 = 1000;
  EXPECT_EQ(issue_sync(req).value, 1u);
  EXPECT_EQ(issue_sync(req).value, 0u);
  // 1 us at 1 GB/s refills 1000 bytes.
  sim.schedule_in(sim::Duration::micros(2), [] {});
  sim.run();
  EXPECT_EQ(issue_sync(req).value, 1u);
}

TEST_F(SmsTest, SramLatencyFasterThanDram) {
  trio::XtxnRequest sram;
  sram.op = trio::XtxnOp::kRead;
  sram.addr = 64;  // SRAM region
  sram.len = 8;
  const sim::Time t0 = sim.now();
  const sim::Time sram_reply = sms.issue(sram, {});

  trio::XtxnRequest dram;
  dram.op = trio::XtxnOp::kRead;
  dram.addr = sms.dram_base() + (100u << 20);  // cold DRAM line
  dram.len = 8;
  const sim::Time dram_reply = sms.issue(dram, {});
  EXPECT_LT((sram_reply - t0).ns(), 150);
  EXPECT_GT((dram_reply - t0).ns(), 300);
}

TEST_F(SmsTest, DramCacheHitsAfterFirstTouch) {
  trio::XtxnRequest rd;
  rd.op = trio::XtxnOp::kRead;
  rd.addr = sms.dram_base() + 4096;
  rd.len = 8;
  sms.issue(rd, {});
  EXPECT_EQ(sms.dram_cache_misses(), 1u);
  sms.issue(rd, {});
  EXPECT_EQ(sms.dram_cache_hits(), 1u);
}

TEST_F(SmsTest, BankSerializationCreatesBackpressure) {
  // Hammer one bank with large vector adds: replies must spread out in
  // time (8 bytes/cycle/engine), unlike adds spread across banks.
  trio::XtxnRequest add;
  add.op = trio::XtxnOp::kAddVec32;
  add.addr = 0;  // bank 0
  add.data.assign(64, 1);  // 16 adds x 2 cycles = 32 cycles service
  sim::Time last;
  for (int i = 0; i < 10; ++i) last = sms.issue(add, {});
  // Total >= 10 * 32 cycles of service on one engine.
  EXPECT_GE((last - sim.now()).ns(), 10 * 32 - 32);
}

TEST_F(SmsTest, BanksAreInterleavedAt64Bytes) {
  EXPECT_EQ(sms.bank_of(0), 0);
  EXPECT_EQ(sms.bank_of(63), 0);
  EXPECT_EQ(sms.bank_of(64), 1);
  EXPECT_EQ(sms.bank_of(64 * static_cast<std::uint64_t>(sms.bank_count())),
            0);
}

TEST_F(SmsTest, LineOwnershipModeIsSlower) {
  // Ablation (§2.3): conventional lock-the-line RMW occupies the bank for
  // the full round trip; Trio's near-memory engines only for the op.
  trio::XtxnRequest add;
  add.op = trio::XtxnOp::kAddVec32;
  add.addr = 0;
  add.data.assign(64, 1);

  sim::Time rmw_last;
  for (int i = 0; i < 20; ++i) rmw_last = sms.issue(add, {});

  trio::SharedMemorySystem slow(sim, trio::Calibration{});
  slow.set_line_ownership_mode(true);
  sim::Time own_last;
  for (int i = 0; i < 20; ++i) own_last = slow.issue(add, {});
  EXPECT_GT((own_last - sim.now()).ns(), 2 * (rmw_last - sim.now()).ns());
}

TEST_F(SmsTest, AllocatorsRespectRegions) {
  const auto a = sms.alloc_sram(100);
  const auto b = sms.alloc_sram(100);
  EXPECT_LT(a, b);
  EXPECT_LT(b, trio::Calibration{}.sram_bytes);
  const auto d = sms.alloc_dram(1 << 20);
  EXPECT_GE(d, sms.dram_base());
}

TEST_F(SmsTest, SramExhaustionThrows) {
  EXPECT_THROW(sms.alloc_sram(trio::Calibration{}.sram_bytes + 1),
               std::runtime_error);
}

TEST_F(SmsTest, OutOfRangeAccessThrows) {
  trio::XtxnRequest rd;
  rd.op = trio::XtxnOp::kRead;
  rd.addr = sms.dram_base() + trio::Calibration{}.dram_bytes;
  rd.len = 8;
  EXPECT_THROW(sms.issue(rd, {}), std::out_of_range);
}

}  // namespace
