#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/simulator.hpp"
#include "trio/hash.hpp"
#include "trio/hash_table.hpp"

namespace {

TEST(HashFunction, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = trio::mix64(0x123456789abcdefull);
    const std::uint64_t b = trio::mix64(0x123456789abcdefull ^ (1ull << bit));
    total += std::popcount(a ^ b);
  }
  const double avg = total / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashFunction, BytesHashDistinguishesInputs) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> data(16, 0);
    data[0] = static_cast<std::uint8_t>(i);
    data[1] = static_cast<std::uint8_t>(i >> 8);
    seen.insert(trio::hash_bytes(data));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashFunction, SeedChangesResult) {
  std::vector<std::uint8_t> data{1, 2, 3};
  EXPECT_NE(trio::hash_bytes(data, 0), trio::hash_bytes(data, 1));
}

TEST(HashFunction, PairHashOrderSensitive) {
  EXPECT_NE(trio::hash_pair(1, 2), trio::hash_pair(2, 1));
}

class HashTableTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  trio::HwHashTable table{sim, trio::Calibration{}, 256};
};

TEST_F(HashTableTest, InsertLookupDelete) {
  EXPECT_TRUE(table.insert(42, 1000));
  EXPECT_FALSE(table.insert(42, 2000));  // duplicate key rejected
  EXPECT_EQ(table.lookup(42).value(), 1000u);
  EXPECT_FALSE(table.lookup(43).has_value());
  EXPECT_TRUE(table.erase(42));
  EXPECT_FALSE(table.erase(42));
  EXPECT_EQ(table.size(), 0u);
}

TEST_F(HashTableTest, ManyKeysSurviveChaining) {
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_TRUE(table.insert(k, k * 3));
  }
  EXPECT_EQ(table.size(), 10'000u);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_EQ(table.lookup(k).value(), k * 3);
  }
}

TEST_F(HashTableTest, RefFlagAging) {
  table.insert(1, 100);
  table.insert(2, 200);

  // First scan clears REF (set by insert); nothing aged yet.
  auto aged = table.scan_partition(0, 1);
  EXPECT_TRUE(aged.empty());

  // Key 1 is referenced between scans; key 2 is not.
  table.lookup(1);
  aged = table.scan_partition(0, 1);
  ASSERT_EQ(aged.size(), 1u);
  EXPECT_EQ(aged[0], 2u);

  // With no further references both age on the next pass.
  aged = table.scan_partition(0, 1);
  EXPECT_EQ(aged.size(), 2u);
}

TEST_F(HashTableTest, PartitionedScanCoversEverythingExactlyOnce) {
  for (std::uint64_t k = 0; k < 500; ++k) table.insert(k, k);
  const std::uint32_t parts = 10;
  // First pass: clear all REF flags.
  for (std::uint32_t p = 0; p < parts; ++p) table.scan_partition(p, parts);
  // Second pass: every record must age out in exactly one partition.
  std::unordered_set<std::uint64_t> aged;
  for (std::uint32_t p = 0; p < parts; ++p) {
    for (auto k : table.scan_partition(p, parts, 1000)) {
      EXPECT_TRUE(aged.insert(k).second) << "key reported twice";
    }
  }
  EXPECT_EQ(aged.size(), 500u);
}

TEST_F(HashTableTest, ScanBadPartitionThrows) {
  EXPECT_THROW(table.scan_partition(5, 5), std::invalid_argument);
  EXPECT_THROW(table.scan_partition(0, 0), std::invalid_argument);
}

TEST_F(HashTableTest, XtxnInterface) {
  trio::XtxnRequest ins;
  ins.op = trio::XtxnOp::kHashInsert;
  ins.arg0 = 7;
  ins.arg1 = 700;
  trio::XtxnReply reply;
  table.issue(ins, [&](trio::XtxnReply r) { reply = std::move(r); });
  sim.run();
  EXPECT_TRUE(reply.ok);

  trio::XtxnRequest lu;
  lu.op = trio::XtxnOp::kHashLookup;
  lu.arg0 = 7;
  table.issue(lu, [&](trio::XtxnReply r) { reply = std::move(r); });
  sim.run();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.value, 700u);

  trio::XtxnRequest del;
  del.op = trio::XtxnOp::kHashDelete;
  del.arg0 = 7;
  table.issue(del, [&](trio::XtxnReply r) { reply = std::move(r); });
  sim.run();
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.value, 700u) << "delete reply carries the record value";

  table.issue(del, [&](trio::XtxnReply r) { reply = std::move(r); });
  sim.run();
  EXPECT_FALSE(reply.ok);
}

TEST_F(HashTableTest, XtxnScanReturnsPackedKeys) {
  table.insert(0xabcd, 1);
  table.scan_partition(0, 1);  // clear REF
  trio::XtxnRequest scan;
  scan.op = trio::XtxnOp::kHashScanStep;
  scan.arg0 = std::uint64_t(1) << 32 | 0;  // parts=1, part=0
  scan.arg1 = 16;
  trio::XtxnReply reply;
  table.issue(scan, [&](trio::XtxnReply r) { reply = std::move(r); });
  sim.run();
  EXPECT_EQ(reply.value, 1u);
  ASSERT_EQ(reply.data.size(), 8u);
  std::uint64_t k = 0;
  for (int i = 7; i >= 0; --i) k = k << 8 | reply.data[static_cast<std::size_t>(i)];
  EXPECT_EQ(k, 0xabcdu);
}

}  // namespace
