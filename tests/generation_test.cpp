// Trio generation presets (paper §2.1/§8): capability scales from the
// first generation (16 PPEs, 40 Gbps with multiple chips) to the sixth
// (160 PPEs, 1.6 Tbps single-chip), with RMW engines added each
// generation so memory bandwidth tracks packet bandwidth.
#include <gtest/gtest.h>

#include "trioml/testbed.hpp"

namespace {

TEST(Generations, PresetsAreMonotoneInCapability) {
  int prev_threads = 0;
  int prev_banks = 0;
  double prev_gbps = 0;
  for (int gen = 1; gen <= 6; ++gen) {
    const auto c = trio::Calibration::generation(gen);
    const int threads = c.ppes_per_pfe * c.threads_per_ppe;
    EXPECT_GE(threads, prev_threads) << "gen " << gen;
    EXPECT_GE(c.sms_banks, prev_banks) << "gen " << gen;
    const double gbps = trio::Calibration::generation_bandwidth_gbps(gen);
    EXPECT_GT(gbps, prev_gbps) << "gen " << gen;
    prev_threads = threads;
    prev_banks = c.sms_banks;
    prev_gbps = gbps;
  }
  EXPECT_EQ(trio::Calibration::generation_bandwidth_gbps(1), 40);
  EXPECT_EQ(trio::Calibration::generation_bandwidth_gbps(6), 1600);
}

TEST(Generations, OutOfRangeRejected) {
  EXPECT_THROW(trio::Calibration::generation(0), std::invalid_argument);
  EXPECT_THROW(trio::Calibration::generation(7), std::invalid_argument);
  EXPECT_THROW(trio::Calibration::generation_bandwidth_gbps(0),
               std::invalid_argument);
}

TEST(Generations, NewerChipsFinishTheSameWorkloadSooner) {
  // The same aggregation workload, packet level, on a gen-2 vs a gen-6
  // PFE model: more PPE threads and more RMW engines must reduce the
  // makespan.
  auto run_gen = [](int gen) {
    trioml::TestbedConfig cfg;
    cfg.num_workers = 4;
    cfg.grads_per_packet = 1024;
    cfg.window = 128;
    cfg.cal = trio::Calibration::generation(gen);
    trioml::Testbed tb(cfg);
    int done = 0;
    for (int w = 0; w < 4; ++w) {
      std::vector<std::uint32_t> g(1024 * 400, 1);
      tb.worker(w).start_allreduce(std::move(g), 1,
                                   [&](trioml::AllreduceResult) { ++done; });
    }
    tb.simulator().run();
    EXPECT_EQ(done, 4) << "gen " << gen;
    return tb.simulator().now().us();
  };
  const double gen2 = run_gen(2);
  const double gen6 = run_gen(6);
  EXPECT_LT(gen6, gen2 * 0.8)
      << "a sixth-generation PFE must clearly outpace a second-generation one";
}

}  // namespace
