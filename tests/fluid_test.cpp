// Fluid fidelity-boundary tests (docs/fluid.md): the max-min allocator,
// byte-exact completion and pause/credit round trips at the engine level;
// demote/re-materialise byte identity, digest invariance of a lossy run
// with fluid vs packet background traffic, chaos windows forcing packet
// mode, and shard-count invariance at the FluidController level.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "jobs/fluid.hpp"
#include "recovery/recovery.hpp"
#include "sim/fluid.hpp"
#include "sim/simulator.hpp"

namespace {

using cluster::Cluster;
using cluster::ClusterSpec;
using sim::Duration;
using sim::FluidEngine;
using sim::Time;

Time ms(int v) { return Time(Duration::millis(v).ns()); }
Time us(int v) { return Time(Duration::micros(v).ns()); }

// --- FluidEngine: the max-min allocator --------------------------------

// A lone demand-capped flow gets its demand; an uncapped one takes the
// residual.
TEST(FluidEngine, SingleFlowRates) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr);
  const auto l = eng.add_link(100.0);
  const auto a = eng.add_flow({{l}, 40.0, 0, nullptr});
  EXPECT_NEAR(eng.flow_rate_gbps(a), 40.0, 1e-9);
  const auto b = eng.add_flow({{l}, 0.0, 0, nullptr});
  EXPECT_NEAR(eng.flow_rate_gbps(a), 40.0, 1e-9);
  EXPECT_NEAR(eng.flow_rate_gbps(b), 60.0, 1e-9);
  EXPECT_NEAR(eng.link_fluid_gbps(l), 100.0, 1e-9);
  eng.stop();
}

// Two uncapped flows split a link evenly; removing one returns its share.
TEST(FluidEngine, FairShareAndDeparture) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr);
  const auto l = eng.add_link(100.0);
  const auto a = eng.add_flow({{l}, 0.0, 0, nullptr});
  const auto b = eng.add_flow({{l}, 0.0, 0, nullptr});
  EXPECT_NEAR(eng.flow_rate_gbps(a), 50.0, 1e-9);
  EXPECT_NEAR(eng.flow_rate_gbps(b), 50.0, 1e-9);
  eng.remove_flow(b);
  EXPECT_NEAR(eng.flow_rate_gbps(a), 100.0, 1e-9);
  eng.stop();
}

// The classic two-link example: flow B crosses a 30 Gbps bottleneck, so
// max-min gives it 30 and hands flow A the 70 left on the shared link —
// not the 50/50 a naive equal split would produce.
TEST(FluidEngine, MaxMinBottleneck) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr);
  const auto wide = eng.add_link(100.0);
  const auto narrow = eng.add_link(30.0);
  const auto a = eng.add_flow({{wide}, 0.0, 0, nullptr});
  const auto b = eng.add_flow({{wide, narrow}, 0.0, 0, nullptr});
  EXPECT_NEAR(eng.flow_rate_gbps(b), 30.0, 1e-9);
  EXPECT_NEAR(eng.flow_rate_gbps(a), 70.0, 1e-9);
  EXPECT_NEAR(eng.link_fluid_gbps(wide), 100.0, 1e-9);
  EXPECT_NEAR(eng.link_fluid_gbps(narrow), 30.0, 1e-9);
  eng.stop();
}

// A finite flow completes at the latency-correct instant — exactly
// ceil(bytes * 8 / rate) ns after it starts — carrying exactly its byte
// total (no drift from fractional accrual).
TEST(FluidEngine, ByteExactCompletion) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr);
  const auto l = eng.add_link(100.0);
  const std::uint64_t total = 1'000'000;  // 8 Mbit at 100 Gbps = 80 us
  Time done_at;
  bool done = false;
  const auto f = eng.add_flow({{l}, 0.0, total, [&](Time at) {
                                 done_at = at;
                                 done = true;
                               }});
  s.run_until(ms(10));
  ASSERT_TRUE(done);
  EXPECT_EQ(done_at, us(80));
  EXPECT_TRUE(eng.flow_done(f));
  EXPECT_EQ(eng.flow_bytes(f), total);
  EXPECT_EQ(eng.flow_remaining(f), 0u);
  EXPECT_EQ(eng.completions(), 1u);
  eng.stop();
}

// An odd rate whose per-tick byte accrual is fractional must still carry
// exactly total_bytes by the completion instant.
TEST(FluidEngine, FractionalRateStaysByteExact) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr);
  const auto l = eng.add_link(100.0);
  const std::uint64_t total = 999'983;  // prime
  bool done = false;
  const auto f = eng.add_flow({{l}, 3.7, total, [&](Time) { done = true; }});
  s.run_until(ms(100));
  ASSERT_TRUE(done);
  EXPECT_EQ(eng.flow_bytes(f), total);
  eng.stop();
}

// Pause releases bandwidth to the remaining flows; credit_flow counts
// re-materialised packet bytes toward the total; resume continues from
// the credited position. The round trip ends with carried == total and a
// single completion — byte identity across the fidelity boundary.
TEST(FluidEngine, PauseCreditResumeRoundTrip) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr);
  const auto l = eng.add_link(100.0);
  const auto bg = eng.add_flow({{l}, 0.0, 0, nullptr});
  const std::uint64_t total = 2'000'000;
  int completions = 0;
  const auto f = eng.add_flow({{l}, 0.0, total, [&](Time) { ++completions; }});
  EXPECT_NEAR(eng.flow_rate_gbps(bg), 50.0, 1e-9);

  s.schedule_at(us(40), [&] {
    eng.pause_flow(f);  // advances accrual to now, then releases the share
    EXPECT_TRUE(eng.flow_paused(f));
    EXPECT_EQ(eng.flow_bytes(f), 250'000u);  // 40 us at 50 Gbps
    EXPECT_NEAR(eng.flow_rate_gbps(bg), 100.0, 1e-9);
    EXPECT_NEAR(eng.flow_rate_gbps(f), 0.0, 1e-9);
  });
  s.schedule_at(us(60), [&] {
    EXPECT_EQ(eng.flow_bytes(f), 250'000u);  // no accrual while paused
    eng.credit_flow(f, 750'000);             // packet frames carried these
    eng.resume_flow(f);
    EXPECT_EQ(eng.flow_bytes(f), 1'000'000u);
  });
  s.run_until(ms(10));
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(eng.flow_bytes(f), total);
  eng.stop();
}

// Crediting the full remainder while paused completes the flow without a
// resume — the re-materialised stream finished the transfer on its own.
TEST(FluidEngine, CreditWhilePausedCompletes) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr);
  const auto l = eng.add_link(100.0);
  int completions = 0;
  const auto f = eng.add_flow({{l}, 0.0, 1000, [&](Time) { ++completions; }});
  s.schedule_at(Time(Duration::nanos(100).ns()), [&] {
    eng.pause_flow(f);
    eng.credit_flow(f, eng.flow_remaining(f));
  });
  s.run_until(ms(1));
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(eng.flow_done(f));
  eng.stop();
}

// The packet-occupancy probe reserves measured packet bandwidth away from
// the fluid allocation on the next tick.
TEST(FluidEngine, PacketProbeReservesCapacity) {
  sim::Simulator s;
  FluidEngine eng(s, nullptr, FluidEngine::Config{Duration::micros(10)});
  const auto l = eng.add_link(100.0);
  std::uint64_t packet_bytes = 0;
  eng.set_packet_probe(l, [&] { return packet_bytes; });
  const auto f = eng.add_flow({{l}, 0.0, 0, nullptr});
  EXPECT_NEAR(eng.flow_rate_gbps(f), 100.0, 1e-9);
  // 25 KB over the [0, 10 us) probe window = 20 Gbps of packet traffic.
  s.schedule_at(us(5), [&] { packet_bytes = 25'000; });
  s.schedule_at(us(12), [&] {  // after the 10 us tick re-sampled the probe
    EXPECT_NEAR(eng.link_packet_gbps(l), 20.0, 1e-6);
    EXPECT_NEAR(eng.flow_rate_gbps(f), 80.0, 1e-6);
  });
  s.run_until(us(15));
  eng.stop();
}

// --- FluidController: the fidelity boundary on a Cluster ---------------

ClusterSpec small_spec(int shards = 1) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 512;
  spec.fabric_link.gbps = 400.0;
  spec.fabric_link.latency = Duration::micros(2);
  spec.shards = shards;
  return spec;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

// Results + timing fingerprint (the fig17 shape): any scheduling or
// ordering divergence shows up here even when values agree.
std::uint64_t run_digest(const cluster::AllreduceRun& run, Time now) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv(h, std::uint64_t(run.finished));
  h = fnv(h, std::uint64_t(run.finish.ns()));
  h = fnv(h, std::uint64_t(now.ns()));
  for (const auto& r : run.results) {
    for (float g : r.grads) {
      std::uint32_t bits;
      std::memcpy(&bits, &g, sizeof(bits));
      h = fnv(h, bits);
    }
  }
  return h;
}

struct ControllerRun {
  cluster::AllreduceRun run;
  std::uint64_t digest = 0;
  std::uint64_t fluid_bytes = 0;
  std::uint64_t packet_frames = 0;
  std::uint64_t transitions = 0;
};

// One allreduce against background aggressors on every host, with
// optional chaos. `forced_packet` holds packet mode for the whole run,
// so the re-materialised generators do all the work — the full-fidelity
// comparator fluid runs are measured against.
ControllerRun run_with_background(const ClusterSpec& spec, bool forced_packet,
                                  const faults::FaultSchedule* schedule,
                                  Time deadline) {
  Cluster cl(spec);
  for (int w = 0; w < cl.num_workers(); ++w) {
    cl.worker(w).enable_retransmit(Duration::micros(200));
  }
  jobs::FluidController fluid(cl);
  for (int h = 0; h < cl.num_workers(); ++h) {
    fluid.add_background_stream(h, /*tenant=*/9, /*load=*/0.5);
  }
  faults::FaultInjector injector(cl.simulator());
  if (schedule != nullptr) {
    injector.bind(cl);
    injector.arm(*schedule);
    fluid.observe(*schedule);
  }
  if (forced_packet) fluid.enter_packet_mode();

  ControllerRun out;
  out.run = cluster::run_allreduce(
      cl, cluster::patterned_gradients(cl.num_workers(), 128 * 8),
      /*gen_id=*/1, deadline);
  fluid.stop();
  out.digest = run_digest(out.run, cl.simulator().now());
  out.fluid_bytes = fluid.fluid_bytes();
  out.packet_frames = fluid.packet_frames();
  out.transitions = fluid.transitions();
  return out;
}

// Fluid-mode and forced-packet-mode background traffic produce the same
// allreduce values (the aggregation arithmetic never sees the aggressor
// bytes, only their contention), and each mode really ran in its mode.
TEST(FluidController, FluidVsPacketBackgroundValueIdentical) {
  const auto fluid = run_with_background(small_spec(), false, nullptr, ms(5));
  const auto packet = run_with_background(small_spec(), true, nullptr, ms(5));
  ASSERT_EQ(fluid.run.finished, 4);
  ASSERT_EQ(packet.run.finished, 4);
  EXPECT_TRUE(cluster::bit_identical(fluid.run.results, packet.run.results));
  EXPECT_GT(fluid.fluid_bytes, 0u);
  EXPECT_EQ(fluid.packet_frames, 0u);  // no fault window: never demoted
  EXPECT_EQ(packet.fluid_bytes, 0u);   // forced packet: never fluid
  EXPECT_GT(packet.packet_frames, 0u);
}

// Same comparison through a lossy fabric (the fig13 shape): drops on the
// trunk uplinks, worker retransmission repairing them. Values must stay
// bit-identical to the clean flat-testbed baseline in both modes.
TEST(FluidController, LossyRunDigestInvariantFluidVsPacket) {
  for (const bool forced_packet : {false, true}) {
    auto spec = small_spec();
    Cluster cl(spec);
    for (int r = 0; r < spec.racks; ++r) {
      cl.fabric_link(r).a_to_b().set_loss(0.3, 91 + std::uint64_t(r));
    }
    for (int w = 0; w < cl.num_workers(); ++w) {
      cl.worker(w).enable_retransmit(Duration::micros(200));
    }
    jobs::FluidController fluid(cl);
    for (int h = 0; h < cl.num_workers(); ++h) {
      fluid.add_background_stream(h, 9, 0.5);
    }
    if (forced_packet) fluid.enter_packet_mode();
    const auto grads = cluster::patterned_gradients(4, 128 * 8);
    const auto run = cluster::run_allreduce(cl, grads, 1, ms(10));
    fluid.stop();
    ASSERT_EQ(run.finished, 4) << "forced_packet=" << forced_packet;
    std::uint64_t dropped = 0;
    for (int r = 0; r < spec.racks; ++r) {
      dropped += cl.fabric_link(r).a_to_b().frames_dropped();
    }
    EXPECT_GT(dropped, 0u) << "forced_packet=" << forced_packet;
    EXPECT_TRUE(cluster::bit_identical(run.results,
                                       cluster::testbed_baseline(spec, grads)))
        << "forced_packet=" << forced_packet;
  }
}

// A chaos window forces packet mode: burst loss on rack 0's trunk opens a
// packet-fidelity region; re-materialised frames flow (and some really
// drop), then the streams demote back to fluid after the padded window.
TEST(FluidController, ChaosWindowForcesPacketMode) {
  auto spec = small_spec();
  faults::FaultSchedule schedule;
  schedule.burst_loss(
      ms(1), {faults::TargetKind::kFabricLink, 0, faults::LinkDir::kUp},
      net::GilbertElliott{0.05, 0.2, 0.0, 1.0},
      /*window=*/Duration::millis(2), /*seed=*/7);

  Cluster cl(spec);
  for (int w = 0; w < cl.num_workers(); ++w) {
    cl.worker(w).enable_retransmit(Duration::micros(200));
  }
  jobs::FluidController fluid(cl);
  for (int h = 0; h < cl.num_workers(); ++h) {
    fluid.add_background_stream(h, 9, 0.5);
  }
  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  injector.arm(schedule);
  fluid.observe(schedule);
  EXPECT_EQ(fluid.windows_observed(), 1u);

  // Watch the mode at the window edges: fluid before, packet inside,
  // fluid again after the padded exit (3 ms end + 100 us < 4 ms).
  bool before = false, inside = false, after = false;
  cl.engine().schedule_global(us(999), [&] { before = !fluid.packet_mode(); });
  cl.engine().schedule_global(ms(2), [&] { inside = fluid.packet_mode(); });
  cl.engine().schedule_global(ms(4), [&] { after = !fluid.packet_mode(); });

  const auto run = cluster::run_allreduce(
      cl, cluster::patterned_gradients(4, 128 * 8), 1, ms(5));
  fluid.stop();

  ASSERT_EQ(run.finished, 4);
  EXPECT_TRUE(before);
  EXPECT_TRUE(inside);
  EXPECT_TRUE(after);
  EXPECT_EQ(fluid.transitions(), 2u);  // one enter + one exit
  EXPECT_GT(fluid.packet_frames(), 0u);
  EXPECT_GT(fluid.fluid_bytes(), 0u);
  EXPECT_GT(cl.fabric_link(0).a_to_b().frames_dropped(), 0u);
}

// Demote/re-materialise round trip is byte-exact: a finite bulk transfer
// that crosses a packet window completes carrying exactly its byte
// total, every byte counted once — fluid accrual plus credited emitter
// frames.
TEST(FluidController, BulkTransferRoundTripByteIdentity) {
  auto spec = small_spec();
  faults::FaultSchedule schedule;
  // The faulted link (host 1's uplink) is not the stream's path: the
  // window demotes the stream without eating its frames.
  schedule.burst_loss(ms(1),
                      {faults::TargetKind::kHostLink, 1, faults::LinkDir::kUp},
                      net::GilbertElliott{0.01, 0.5, 0.0, 1.0},
                      Duration::millis(1), /*seed=*/3);

  Cluster cl(spec);
  jobs::FluidController fluid(cl);
  const std::uint64_t total = 40'000'000;  // ~4 ms at load 0.8: spans the
                                           // [1 ms, 2 ms] window
  Time done_at;
  bool done = false;
  const int s = fluid.add_bulk_transfer(/*host=*/0, /*tenant=*/9,
                                        /*load=*/0.8, total, [&](Time at) {
                                          done_at = at;
                                          done = true;
                                        });
  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  injector.arm(schedule);
  fluid.observe(schedule);

  cl.engine().run_until(ms(20));
  fluid.stop();

  ASSERT_TRUE(done);
  EXPECT_TRUE(fluid.stream_done(s));
  EXPECT_EQ(fluid.stream_bytes(s), total);
  EXPECT_EQ(fluid.transitions(), 2u);
  EXPECT_GT(fluid.packet_frames(), 0u);  // the window really re-materialised
  EXPECT_GT(fluid.fluid_bytes(), 0u);    // and fluid carried the rest
  // Fluid bytes + credited packet bytes account for every byte once.
  EXPECT_EQ(fluid.fluid_bytes() + fluid.packet_bytes(), total);
  EXPECT_GT(done_at, ms(2));  // the window pause pushes completion past it
}

// The dynamic region: a spine kill opens a recovery epoch, and the
// polled recovery_epoch_open() predicate re-materialises every stream
// within one probe period — no static fault window needed. The epoch
// never closes (no rejoin), so the controller holds packet mode to the
// end and the allreduce still completes via failover.
TEST(FluidController, RecoveryEpochProbeForcesPacketMode) {
  cluster::ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 1024;
  spec.backup_spine = true;
  spec.host_link.gbps = 10.0;  // stretch the epoch past the kill + detect
  Cluster cl(spec);
  for (int w = 0; w < cl.num_workers(); ++w) {
    cl.worker(w).enable_hardened_retransmit(Duration::millis(1),
                                            /*retry_budget=*/50,
                                            Duration::millis(8));
  }

  recovery::RecoveryConfig rc;
  rc.heartbeat.period = Duration::micros(20);
  rc.heartbeat.check_period = Duration::micros(10);
  rc.heartbeat.phi_threshold = 4.0;
  recovery::RecoveryManager mgr(cl, rc);
  mgr.start();

  jobs::FluidController fluid(cl);
  for (int h = 0; h < cl.num_workers(); ++h) {
    fluid.add_background_stream(h, 9, 0.3);
  }
  fluid.set_packet_mode_probe([&mgr] { return mgr.recovery_epoch_open(); });

  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  faults::FaultSchedule schedule;
  schedule.kill(us(100), faults::FaultSchedule::spine_router());
  injector.arm(schedule);

  const auto run = cluster::run_allreduce(
      cl, cluster::patterned_gradients(4, 128 * 8), 1, ms(50));
  const bool held = fluid.packet_mode();
  fluid.stop();
  mgr.stop();

  ASSERT_EQ(run.finished, 4);
  EXPECT_EQ(mgr.failovers(), 1u);
  EXPECT_TRUE(held);                   // the epoch never closed
  EXPECT_EQ(fluid.transitions(), 1u);  // one enter, no exit
  EXPECT_GT(fluid.fluid_bytes(), 0u);  // fluid before the kill...
  EXPECT_GT(fluid.packet_frames(), 0u);  // ...re-materialised after
}

// The digest of a fluid-enabled chaos run — allreduce under fluid
// background load with a burst-loss window that overlaps the transfer —
// is bit-identical across shard counts: every fluid transition and rate
// update runs as a global action at a deterministic simulated time.
TEST(FluidController, ShardCountInvariantDigest) {
  faults::FaultSchedule schedule;
  schedule.burst_loss(
      us(100), {faults::TargetKind::kFabricLink, 0, faults::LinkDir::kUp},
      net::GilbertElliott{0.05, 0.2, 0.0, 1.0}, Duration::millis(1),
      /*seed=*/7);

  std::uint64_t base_digest = 0;
  std::uint64_t base_fluid = 0;
  std::uint64_t base_frames = 0;
  for (const int shards : {1, 3}) {
    const auto res =
        run_with_background(small_spec(shards), false, &schedule, ms(5));
    ASSERT_EQ(res.run.finished, 4) << "shards=" << shards;
    EXPECT_GT(res.transitions, 0u) << "shards=" << shards;
    if (shards == 1) {
      base_digest = res.digest;
      base_fluid = res.fluid_bytes;
      base_frames = res.packet_frames;
    } else {
      EXPECT_EQ(res.digest, base_digest) << "shards=" << shards;
      EXPECT_EQ(res.fluid_bytes, base_fluid) << "shards=" << shards;
      EXPECT_EQ(res.packet_frames, base_frames) << "shards=" << shards;
    }
  }
}

}  // namespace
