// Self-healing control plane (src/recovery/, docs/recovery.md).
//
// Covers the phi-accrual estimator, hash-table generation epochs (the
// O(1) power-loss invalidation substrate), heartbeat death/revival
// detection with a bounded detection latency and a deterministic replay
// digest, the acceptance scenario — a spine killed mid-allreduce fails
// over to the backup spine and the result stays bit-identical to the
// fault-free run — the combined chaos schedule (burst loss + kill), the
// worker crash-teardown epoch regression, and kill/revive convergence on
// the single-router testbed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "recovery/recovery.hpp"
#include "trio/hash_table.hpp"
#include "trioml/testbed.hpp"
#include "vigil/invariants.hpp"

namespace {

using cluster::Cluster;
using cluster::ClusterSpec;
using faults::FaultInjector;
using faults::FaultSchedule;
using recovery::HeartbeatConfig;
using recovery::PhiEstimator;
using recovery::RecoveryConfig;
using recovery::RecoveryManager;

sim::Time at_us(std::int64_t us) {
  return sim::Time() + sim::Duration::micros(us);
}

// FNV-1a over each result's gradient bits (same idiom as faults_test).
std::uint64_t digest_results(
    const std::vector<trioml::AllreduceResult>& results) {
  std::uint64_t h = 1469598103934665603ull;
  const auto eat = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : results) {
    eat(r.grads.size());
    eat(r.degraded_blocks);
    for (float g : r.grads) {
      std::uint32_t bits;
      static_assert(sizeof bits == sizeof g);
      __builtin_memcpy(&bits, &g, sizeof bits);
      eat(bits);
    }
  }
  return h;
}

// --- Phi estimator ---------------------------------------------------------

TEST(PhiEstimator, AccruesSuspicionWithSilence) {
  PhiEstimator est;
  EXPECT_FALSE(est.primed());
  EXPECT_DOUBLE_EQ(est.phi(at_us(1000)), 0.0);  // unprimed = no suspicion

  for (int i = 0; i <= 10; ++i) est.observe(at_us(i * 100));
  EXPECT_TRUE(est.primed());
  EXPECT_NEAR(est.mean_interval_ns(), 100'000.0, 1.0);

  const sim::Time last = at_us(1000);
  EXPECT_DOUBLE_EQ(est.phi(last), 0.0);  // no silence yet
  const double one_period = est.phi(at_us(1100));
  const double five_periods = est.phi(at_us(1500));
  EXPECT_GT(one_period, 0.0);
  EXPECT_NEAR(five_periods, 5.0 * one_period, 1e-9);  // linear in silence
  // phi 8 ~= 18.42 quiet periods under the exponential model.
  EXPECT_LT(est.phi(at_us(1000 + 1800)), 8.0);
  EXPECT_GT(est.phi(at_us(1000 + 1900)), 8.0);
}

TEST(PhiEstimator, TracksChangingIntervalWithEwma) {
  PhiEstimator est(/*alpha=*/0.5);
  est.observe(at_us(0));
  est.observe(at_us(100));  // mean = 100us
  EXPECT_NEAR(est.mean_interval_ns(), 100'000.0, 1.0);
  est.observe(at_us(400));  // interval 300us, alpha .5 -> mean 200us
  EXPECT_NEAR(est.mean_interval_ns(), 200'000.0, 1.0);
}

// --- Hash-table generation epochs ------------------------------------------

TEST(HashGenerations, BumpInvalidatesUnpinnedButKeepsPinned) {
  sim::Simulator sim;
  trio::Calibration cal;
  trio::HwHashTable table(sim, cal, /*buckets=*/64);

  ASSERT_TRUE(table.insert(/*key=*/1, /*value=*/10, /*pinned=*/true));
  ASSERT_TRUE(table.insert(/*key=*/2, /*value=*/20));
  ASSERT_TRUE(table.insert(/*key=*/3, /*value=*/30));
  EXPECT_EQ(table.size(), 3u);

  EXPECT_EQ(table.bump_generation(), 1u);
  // Unpinned records vanish from every read path at the bump instant.
  EXPECT_FALSE(table.contains(2));
  EXPECT_FALSE(table.lookup(3).has_value());
  EXPECT_TRUE(table.contains(1));  // pinned survives
  const auto live = table.entries();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].first, 1u);

  // Re-inserting an invalidated key works (fresh record, new generation).
  EXPECT_TRUE(table.insert(2, 22));
  EXPECT_EQ(table.lookup(2).value(), 22u);
}

TEST(HashGenerations, SweepStaleReclaimsEagerlyAndReportsRecords) {
  sim::Simulator sim;
  trio::Calibration cal;
  trio::HwHashTable table(sim, cal, /*buckets=*/64);
  table.insert(1, 10, /*pinned=*/true);
  table.insert(2, 20);
  table.insert(3, 30);
  table.bump_generation();

  std::vector<std::pair<std::uint64_t, std::uint64_t>> reclaimed;
  const std::size_t n = table.sweep_stale(
      [&](std::uint64_t k, std::uint64_t v) { reclaimed.push_back({k, v}); });
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(reclaimed.size(), 2u);
  EXPECT_EQ(table.size(), 1u);  // only the pinned record remains
  EXPECT_EQ(table.stale_reclaimed(), 2u);
  // A second sweep finds nothing.
  EXPECT_EQ(table.sweep_stale([](std::uint64_t, std::uint64_t) {}), 0u);
}

TEST(HashGenerations, ScansNeverReportStaleRecords) {
  sim::Simulator sim;
  trio::Calibration cal;
  trio::HwHashTable table(sim, cal, /*buckets=*/16);
  for (std::uint64_t k = 0; k < 32; ++k) table.insert(k, k);
  table.bump_generation();
  // A straggler-detection scan racing the bump must not age out (and so
  // claim) invalidated buckets: stale records are silently reclaimed.
  std::size_t reported = 0;
  for (std::uint32_t part = 0; part < 4; ++part) {
    reported += table.scan_partition(part, 4).size();
  }
  EXPECT_EQ(reported, 0u);
  EXPECT_EQ(table.size(), 0u);
}

// --- Heartbeat liveness ----------------------------------------------------

HeartbeatConfig fast_heartbeats() {
  HeartbeatConfig hb;
  hb.period = sim::Duration::micros(20);
  hb.check_period = sim::Duration::micros(10);
  hb.phi_threshold = 4.0;
  return hb;
}

TEST(Heartbeat, DetectsDeathWithinBoundAndSeesRevival) {
  auto run_once = [](std::uint64_t* digest) {
    ClusterSpec spec;
    spec.racks = 2;
    spec.workers_per_rack = 2;
    spec.grads_per_packet = 128;
    spec.slab_pool = 256;
    Cluster cl(spec);
    recovery::HeartbeatMonitor monitor(cl.simulator(), nullptr,
                                       fast_heartbeats());
    const int spine_idx = monitor.watch("spine", cl.spine());
    monitor.watch("rack0", cl.leaf(0));
    monitor.start();

    cl.simulator().run_until(at_us(500));
    EXPECT_FALSE(monitor.dead(spine_idx));
    EXPECT_GT(monitor.heartbeats(), 0u);

    const sim::Time killed_at = cl.simulator().now();
    cl.spine().kill();
    cl.simulator().run_until(at_us(2000));
    EXPECT_TRUE(monitor.dead(spine_idx));
    EXPECT_EQ(monitor.deaths_declared(), 1u);
    // Detection bound: phi 4 is ~9.2 quiet periods of 20us; allow EWMA
    // drift and check-period quantization up to 400us.
    ASSERT_EQ(monitor.log().size(), 1u);
    const sim::Duration latency = monitor.log()[0].at - killed_at;
    EXPECT_GT(latency.ns(), 0);
    EXPECT_LT(latency.us(), 400.0);

    cl.spine().revive();
    cl.simulator().run_until(at_us(3000));
    EXPECT_FALSE(monitor.dead(spine_idx));
    EXPECT_EQ(monitor.revivals_detected(), 1u);
    monitor.stop();
    *digest = monitor.digest();
  };
  std::uint64_t d1 = 0, d2 = 0;
  run_once(&d1);
  run_once(&d2);
  EXPECT_EQ(d1, d2);  // deterministic replay
}

// --- Failover acceptance ---------------------------------------------------

struct FailoverRun {
  cluster::AllreduceRun run;
  std::uint64_t result_digest = 0;
  std::uint64_t fault_digest = 0;
  std::uint64_t recovery_digest = 0;
  std::uint64_t failovers = 0;
  std::uint64_t blocks_invalidated = 0;
  std::uint64_t retransmissions = 0;
  double recovery_us = 0.0;  // death declaration -> failover complete
};

// 8 workers / 2 racks with a standby spine and hardened retransmit; the
// optional schedule is armed on a telemetry-instrumented injector.
FailoverRun run_failover(const std::string& schedule_text) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 128;
  spec.slab_pool = 512;
  spec.backup_spine = true;
  // 10G access links stretch the epoch to ~hundreds of us so a kill in
  // the tens of us lands squarely mid-stream.
  spec.host_link.gbps = 10.0;
  telemetry::Telemetry telem(/*metrics_on=*/true, /*trace_on=*/false);
  spec.telemetry = &telem;
  Cluster cl(spec);
  for (int w = 0; w < 8; ++w) {
    cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(1),
                                            /*retry_budget=*/50,
                                            sim::Duration::millis(8));
  }
  RecoveryConfig rc;
  rc.heartbeat = fast_heartbeats();
  RecoveryManager mgr(cl, rc);
  mgr.start();

  FaultInjector injector(cl.simulator(), &telem);
  injector.bind(cl);
  if (!schedule_text.empty()) {
    injector.arm(FaultSchedule::parse(schedule_text));
  }

  // 256 blocks per worker: the fault-free run spans several hundred us,
  // so a kill at ~120us lands mid-epoch with blocks in flight.
  const auto grads = cluster::patterned_gradients(8, 128 * 256);
  FailoverRun out;
  out.run = cluster::run_allreduce(
      cl, grads, /*gen_id=*/1, sim::Time(sim::Duration::millis(80).ns()));
  mgr.stop();

  out.result_digest = digest_results(out.run.results);
  out.fault_digest = injector.digest();
  out.recovery_digest = mgr.digest();
  out.failovers = mgr.failovers();
  out.blocks_invalidated = injector.blocks_invalidated();
  for (int w = 0; w < 8; ++w) {
    out.retransmissions += cl.worker(w).retransmissions();
  }
  if (mgr.failovers() > 0) {
    out.recovery_us = (mgr.last_failover_at() - mgr.last_death_at()).us() +
                      (mgr.last_death_at() - sim::Time()).us();
  }
  return out;
}

TEST(Failover, SpineKillMidEpochConvergesBitIdentical) {
  const FailoverRun baseline = run_failover("");
  ASSERT_EQ(baseline.run.finished, 8);
  EXPECT_EQ(baseline.failovers, 0u);
  // The kill instant below lands mid-allreduce in the fault-free run.
  EXPECT_GT(baseline.run.finish, at_us(60));

  const FailoverRun killed = run_failover("at 60us kill spine");
  ASSERT_EQ(killed.run.finished, 8);
  EXPECT_EQ(killed.failovers, 1u);
  EXPECT_GT(killed.blocks_invalidated, 0u);  // spine died holding blocks
  EXPECT_GT(killed.retransmissions, 0u);     // workers re-contributed

  // The whole point: the recovered result is bit-identical to the
  // fault-free run (integer aggregation + src-mask dedup).
  EXPECT_TRUE(cluster::bit_identical(baseline.run.results, killed.run.results));
  EXPECT_EQ(baseline.result_digest, killed.result_digest);
  for (const auto& r : killed.run.results) {
    EXPECT_EQ(r.degraded_blocks, 0u);
  }
  // And the flat single-router baseline agrees too.
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 128;
  spec.slab_pool = 512;
  const auto flat = cluster::testbed_baseline(
      spec, cluster::patterned_gradients(8, 128 * 256));
  EXPECT_TRUE(cluster::bit_identical(flat, killed.run.results));
}

TEST(Failover, SameSeedReplaysIdenticalDigests) {
  const FailoverRun a = run_failover("at 60us kill spine");
  const FailoverRun b = run_failover("at 60us kill spine");
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.recovery_digest, b.recovery_digest);
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.run.finished, b.run.finished);
}

// Satellite: combined chaos — burst loss on every host link while the
// spine dies mid-epoch. Still bit-identical, still replayable.
TEST(Failover, ChaosKillPlusBurstLossStaysBitIdentical) {
  // Burst loss on the contribution direction only: a lost *result* to a
  // single worker is unrecoverable bit-identically by design (the other
  // workers have the result and will not re-contribute; only aging could
  // unblock it, and aging degrades). Lost contributions are exactly what
  // the retransmit path recovers.
  const std::string chaos = R"(
at 0us   burst host:*.up p_enter=0.02 p_exit=0.2 for 2ms
at 60us kill spine
)";
  const FailoverRun baseline = run_failover("");
  const FailoverRun a = run_failover(chaos);
  const FailoverRun b = run_failover(chaos);
  ASSERT_EQ(a.run.finished, 8);
  EXPECT_EQ(a.failovers, 1u);
  EXPECT_TRUE(cluster::bit_identical(baseline.run.results, a.run.results));
  for (const auto& r : a.run.results) EXPECT_EQ(r.degraded_blocks, 0u);
  // Golden deterministic replay: chaos or not, same seed -> same digests.
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.recovery_digest, b.recovery_digest);
  EXPECT_EQ(a.result_digest, b.result_digest);
}

// Satellite: a leaf router has no standby, so killing one for good is
// unrecoverable by failover — the cluster must still complete *cleanly
// degraded* instead of wedging. Rack-0 workers lose their aggregation
// path; the give-up grace abandons their unfinished blocks after the
// retry budget stops helping, straggler aging drains the half-built
// blocks the dead leaf stranded at the spine, and every runtime
// invariant still holds on the drained cluster.
TEST(Failover, LeafKillWithoutStandbyCompletesDegraded) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 128;
  spec.slab_pool = 512;
  spec.host_link.gbps = 10.0;
  Cluster cl(spec);
  for (int w = 0; w < 8; ++w) {
    cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(1),
                                            /*retry_budget=*/6,
                                            sim::Duration::millis(8));
    cl.worker(w).enable_give_up(sim::Duration::millis(10));
  }
  cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));
  RecoveryConfig rc;
  rc.heartbeat = fast_heartbeats();
  RecoveryManager mgr(cl, rc);
  mgr.start();

  FaultInjector injector(cl.simulator(), /*telemetry=*/nullptr);
  injector.bind(cl);
  injector.arm(FaultSchedule::parse("at 60us kill leaf:0"));

  const sim::Time deadline = sim::Time(sim::Duration::millis(80).ns());
  const auto grads = cluster::patterned_gradients(8, 128 * 256);
  const cluster::AllreduceRun run =
      cluster::run_allreduce(cl, grads, /*gen_id=*/1, deadline);
  mgr.stop();
  cl.stop_straggler_detection();

  // Every worker completes and well before the deadline: no wedge.
  EXPECT_EQ(run.finished, 8);
  EXPECT_LT(run.finish, deadline);
  EXPECT_EQ(mgr.failovers(), 0u);  // nothing to fail over to

  // The completion is degraded, not silently lossy: rack-0 workers
  // abandoned blocks via the give-up path and say so.
  std::uint64_t abandoned = 0, retransmits = 0;
  for (int w = 0; w < 8; ++w) {
    abandoned += cl.worker(w).abandoned_blocks();
    retransmits += cl.worker(w).retransmissions();
  }
  EXPECT_GT(abandoned, 0u);
  // Retransmits are bounded by the budget, not an unbounded retry storm.
  EXPECT_LE(retransmits, 8u * 256u * 6u);

  // The drained cluster still satisfies the invariant catalogue.
  cl.simulator().run_until(cl.simulator().now() + sim::Duration::millis(60));
  vigil::InvariantEngine inv(cl);
  if (cl.simulator().pending()) {
    inv.check_conservation();
  } else {
    inv.check_quiescent();
  }
  for (const auto& v : inv.violations()) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(Failover, RejoinRestoresPrimaryAfterRevival) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 256;
  spec.backup_spine = true;
  Cluster cl(spec);
  RecoveryConfig rc;
  rc.heartbeat = fast_heartbeats();
  rc.auto_rejoin = true;
  RecoveryManager mgr(cl, rc);
  mgr.start();

  FaultInjector injector(cl.simulator(), nullptr);
  injector.bind(cl);
  injector.arm(FaultSchedule::parse(R"(
at 200us kill spine
at 2ms   revive spine
)"));

  cl.simulator().run_until(at_us(1500));
  EXPECT_TRUE(mgr.spine_dead());
  EXPECT_TRUE(cl.on_backup_spine());
  EXPECT_EQ(mgr.failovers(), 1u);

  cl.simulator().run_until(at_us(4000));
  EXPECT_FALSE(mgr.spine_dead());
  EXPECT_FALSE(cl.on_backup_spine());
  EXPECT_EQ(mgr.rejoins(), 1u);
  mgr.stop();
}

TEST(Failover, WithoutBackupSpineFailoverThrowsAndManagerRecordsDeath) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 256;
  Cluster cl(spec);
  EXPECT_THROW(cl.fail_over_to_backup(), std::logic_error);

  RecoveryConfig rc;
  rc.heartbeat = fast_heartbeats();
  RecoveryManager mgr(cl, rc);
  mgr.start();
  cl.simulator().schedule_at(at_us(200), [&] { cl.spine().kill(); });
  cl.simulator().run_until(at_us(2000));
  EXPECT_TRUE(mgr.spine_dead());
  EXPECT_EQ(mgr.failovers(), 0u);  // nowhere to go; death still logged
  ASSERT_FALSE(mgr.log().empty());
  mgr.stop();
}

// --- Worker crash-teardown epochs (regression) -----------------------------

// A crashed worker's in-flight retransmit timers must not fire against
// the next incarnation's state: block ids repeat across allreduces, so a
// stale timer would find the new incarnation's outstanding entry, burn
// its retry budget and resend spuriously. The allreduce epoch captured
// by every scheduled callback makes teardown exact.
TEST(WorkerEpochs, CrashTeardownSilencesStaleRetransmitTimers) {
  trioml::TestbedConfig tc;
  tc.num_workers = 1;
  tc.grads_per_packet = 128;
  tc.slab_pool = 512;
  trioml::Testbed tb(tc);
  auto& w = tb.worker(0);
  w.enable_hardened_retransmit(sim::Duration::micros(50),
                               /*retry_budget=*/10,
                               sim::Duration::millis(1));

  std::vector<std::uint32_t> grads(128 * 64, 7);
  int done_count = 0;
  trioml::AllreduceResult last;
  const auto on_done = [&](trioml::AllreduceResult r) {
    ++done_count;
    last = std::move(r);
  };

  EXPECT_EQ(w.allreduce_epoch(), 0u);
  w.start_allreduce(grads, /*gen_id=*/1, on_done);
  EXPECT_EQ(w.allreduce_epoch(), 1u);
  // Crash mid-flight (retransmit timers armed at ~50us), restart, and
  // immediately run the same allreduce again under the same gen_id.
  tb.simulator().schedule_at(at_us(2), [&] {
    w.crash();
    w.restart();
    w.start_allreduce(grads, /*gen_id=*/1, on_done);
  });
  tb.simulator().run();

  EXPECT_EQ(w.allreduce_epoch(), 3u);  // start, crash, start
  EXPECT_EQ(done_count, 1);            // only the second incarnation finishes
  EXPECT_EQ(last.degraded_blocks, 0u);
  EXPECT_EQ(last.grads.size(), grads.size());
  // Lossless link: any retransmission would have come from a stale
  // first-incarnation timer surviving the crash teardown.
  EXPECT_EQ(w.retransmissions(), 0u);
}

// --- Testbed kill / revive -------------------------------------------------

TEST(RouterKill, TestbedKillReviveConvergesBitIdentical) {
  auto run_once = [](const std::string& schedule_text,
                     std::uint64_t* retransmits) {
    trioml::TestbedConfig tc;
    tc.num_workers = 4;
    tc.grads_per_packet = 128;
    tc.slab_pool = 512;
    trioml::Testbed tb(tc);
    for (int i = 0; i < 4; ++i) {
      tb.worker(i).enable_hardened_retransmit(sim::Duration::millis(1),
                                              /*retry_budget=*/50,
                                              sim::Duration::millis(8));
    }
    FaultInjector injector(tb.simulator(), nullptr);
    injector.bind(tb);
    if (!schedule_text.empty()) {
      injector.arm(FaultSchedule::parse(schedule_text));
    }
    std::vector<trioml::AllreduceResult> results(4);
    int finished = 0;
    for (int i = 0; i < 4; ++i) {
      std::vector<std::uint32_t> grads(128 * 128, std::uint32_t(i + 1));
      tb.worker(i).start_allreduce(grads, /*gen_id=*/1,
                                   [&, i](trioml::AllreduceResult r) {
                                     results[std::size_t(i)] = std::move(r);
                                     ++finished;
                                   });
    }
    tb.simulator().run_until(sim::Time(sim::Duration::millis(60).ns()));
    EXPECT_EQ(finished, 4);
    if (retransmits != nullptr) {
      *retransmits = 0;
      for (int i = 0; i < 4; ++i) *retransmits += tb.worker(i).retransmissions();
    }
    std::uint64_t kill_drops = tb.router().kill_dropped_frames();
    if (!schedule_text.empty()) {
      EXPECT_EQ(tb.router().kills(), 1u);
      EXPECT_GT(kill_drops + injector.blocks_invalidated(), 0u);
    }
    return digest_results(results);
  };

  std::uint64_t baseline_rtx = 0, faulted_rtx = 0;
  const std::uint64_t clean = run_once("", &baseline_rtx);
  // leaf:0 is the testbed's one router; dead for 300us mid-allreduce.
  const std::uint64_t faulted = run_once(R"(
at 10us  kill leaf:0
at 310us revive leaf:0
)",
                                         &faulted_rtx);
  EXPECT_EQ(clean, faulted);  // bit-identical after recovery
  EXPECT_EQ(baseline_rtx, 0u);
  EXPECT_GT(faulted_rtx, 0u);
}

}  // namespace
