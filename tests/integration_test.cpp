// Cross-module integration tests: hierarchical straggler propagation,
// engine saturation behaviour, dispatch queueing, and the ablations
// DESIGN.md commits to.
#include <gtest/gtest.h>

#include "trioml/testbed.hpp"

namespace {

using namespace trioml;

std::vector<std::uint32_t> constant_grads(std::size_t n, std::uint32_t v) {
  return std::vector<std::uint32_t>(n, v);
}

// ---------------------------------------------------------------------------
// Hierarchical aggregation under stragglers: a first-level PFE ages out a
// block with a missing worker; its *degraded* partial result must
// propagate through the top-level aggregator with the right src_cnt, and
// workers must rescale by the accumulated contributor count.

TEST(HierarchicalStraggler, DegradedResultPropagatesThroughTopLevel) {
  TestbedConfig cfg;
  cfg.num_workers = 6;
  cfg.hierarchical = true;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);
  tb.start_straggler_detection(20, sim::Duration::millis(5));

  // Worker 5 (on PFE1) never sends.
  int done = 0;
  std::vector<AllreduceResult> results(6);
  for (int w = 0; w < 5; ++w) {
    tb.worker(w).start_allreduce(constant_grads(64, 10), 1,
                                 [&, w](AllreduceResult r) {
                                   results[static_cast<std::size_t>(w)] = std::move(r);
                                   ++done;
                                 });
  }
  tb.simulator().run_until(sim::Time(sim::Duration::millis(100).ns()));
  ASSERT_EQ(done, 5);
  for (int w = 0; w < 5; ++w) {
    const auto& r = results[static_cast<std::size_t>(w)];
    EXPECT_EQ(r.degraded_blocks, 1u) << "worker " << w;
    // Five of six contributed 10 each: average = 50 / 5.
    for (float v : r.grads) {
      EXPECT_NEAR(v, dequantize(50) / 5.0f, 1e-6f);
    }
  }
  // PFE1 (serving workers 3..5) aged the block; PFE0 completed normally.
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 1u);
  EXPECT_GE(tb.app(1).stats().blocks_aged, 1u);
}

TEST(HierarchicalStraggler, WholeFirstLevelPfeMissing) {
  // All three workers of PFE1 straggle: the top-level aggregator itself
  // must age out and emit a result with src_cnt = 3.
  TestbedConfig cfg;
  cfg.num_workers = 6;
  cfg.hierarchical = true;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);
  tb.start_straggler_detection(20, sim::Duration::millis(5));

  int done = 0;
  std::vector<AllreduceResult> results(6);
  for (int w = 0; w < 3; ++w) {  // only PFE0's workers send
    tb.worker(w).start_allreduce(constant_grads(64, 7), 1,
                                 [&, w](AllreduceResult r) {
                                   results[static_cast<std::size_t>(w)] = std::move(r);
                                   ++done;
                                 });
  }
  tb.simulator().run_until(sim::Time(sim::Duration::millis(100).ns()));
  ASSERT_EQ(done, 3);
  for (int w = 0; w < 3; ++w) {
    const auto& r = results[static_cast<std::size_t>(w)];
    EXPECT_EQ(r.degraded_blocks, 1u);
    for (float v : r.grads) {
      EXPECT_NEAR(v, dequantize(21) / 3.0f, 1e-6f);
    }
  }
  EXPECT_GE(tb.app(3).stats().blocks_aged, 1u);  // top level aged out
}

// ---------------------------------------------------------------------------
// Engine saturation: when offered load exceeds thread capacity, the
// dispatch queue grows and per-packet latency rises — but nothing is
// lost and ordering holds.

TEST(Saturation, DispatchQueueAbsorbsBurstsWithoutLoss) {
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = 1024;
  cfg.window = 2048;  // far beyond the PFE's concurrency
  cfg.slab_pool = 16384;
  Testbed tb(cfg);

  const std::size_t blocks = 3000;
  int done = 0;
  for (int w = 0; w < 4; ++w) {
    tb.worker(w).start_allreduce(constant_grads(1024 * blocks, 1), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(tb.app(0).stats().blocks_completed, blocks);
  EXPECT_EQ(tb.app(0).stats().packets, 4 * blocks);
  EXPECT_EQ(tb.router().pfe(0).packets_dropped_dispatch(), 0u);
  // Saturated latency must exceed the unloaded latency by a lot.
  EXPECT_GT(tb.app(0).stats().packet_latency_us.mean(), 200.0);
}

TEST(Saturation, LatencyRisesMonotonicallyWithWindow) {
  double prev = 0;
  for (std::uint32_t window : {1u, 64u, 512u}) {
    TestbedConfig cfg;
    cfg.num_workers = 4;
    cfg.grads_per_packet = 512;
    cfg.window = window;
    Testbed tb(cfg);
    int done = 0;
    for (int w = 0; w < 4; ++w) {
      tb.worker(w).start_allreduce(constant_grads(512 * 2000, 1), 1,
                                   [&](AllreduceResult) { ++done; });
    }
    tb.simulator().run();
    ASSERT_EQ(done, 4);
    const double lat = tb.app(0).stats().packet_latency_us.mean();
    EXPECT_GE(lat, prev * 0.95) << "window " << window;
    prev = lat;
  }
}

TEST(Saturation, ThroughputCappedRegardlessOfOfferedLoad) {
  // Doubling the window beyond saturation must not increase goodput.
  auto goodput = [](std::uint32_t window) {
    TestbedConfig cfg;
    cfg.num_workers = 4;
    cfg.grads_per_packet = 1024;
    cfg.window = window;
    cfg.slab_pool = 4 * window + 1024;
    Testbed tb(cfg);
    for (int w = 0; w < 4; ++w) {
      tb.worker(w).start_allreduce(constant_grads(1024 * 20000, 1), 1,
                                   [](AllreduceResult) {});
    }
    tb.simulator().run_until(sim::Time(sim::Duration::millis(3).ns()));
    return static_cast<double>(tb.app(0).stats().gradients_aggregated);
  };
  const double g1 = goodput(512);
  const double g2 = goodput(2048);
  EXPECT_LT(g2, g1 * 1.15);
  EXPECT_GT(g2, g1 * 0.85);
}

// ---------------------------------------------------------------------------
// Head/tail split ablation (DESIGN.md §5): small blocks that fit the head
// avoid the tail-read XTXNs entirely; the per-gradient cost of large
// blocks includes the 64-byte chunk loop.

TEST(Ablation, HeadOnlyBlocksSkipTailReads) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 32;  // 128 B of gradients: fits the head entirely
  Testbed tb(cfg);
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    tb.worker(w).start_allreduce(constant_grads(32, 1), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 2);
  EXPECT_EQ(tb.router().pfe(0).mqss().tail_bytes_read(), 0u);
}

TEST(Ablation, TailBlocksReadExactlyTheTailBytes) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 1024;
  Testbed tb(cfg);
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    tb.worker(w).start_allreduce(constant_grads(1024, 1), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 2);
  // Each 4150-byte frame splits 192/3958: two packets of tail gradients.
  EXPECT_EQ(tb.router().pfe(0).mqss().tail_bytes_read(), 2u * 3958u);
}

// ---------------------------------------------------------------------------
// Hierarchical vs single-level fabric volume (DESIGN.md §5): hierarchical
// aggregation reduces data moving between PFEs to one result stream per
// first-level PFE, while naive cross-PFE unicast would carry every
// worker's stream.

TEST(Ablation, HierarchyReducesFabricBytes) {
  const std::size_t blocks = 64;
  TestbedConfig cfg;
  cfg.num_workers = 6;
  cfg.hierarchical = true;
  cfg.grads_per_packet = 1024;
  cfg.window = 16;
  Testbed tb(cfg);
  int done = 0;
  for (int w = 0; w < 6; ++w) {
    tb.worker(w).start_allreduce(constant_grads(1024 * blocks, 1), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 6);

  // Fabric carried: 2 first-level result streams up + 6 multicast result
  // copies down to ports on PFE0/PFE1 = 8 block-sized units per block,
  // versus 6 worker streams up + 6 down = 12 if workers unicast to a
  // remote aggregation PFE.
  const double block_bytes = 4096 + 54;
  const double measured =
      static_cast<double>(tb.router().fabric().bytes()) / blocks;
  EXPECT_NEAR(measured, 8 * block_bytes, 2 * block_bytes);
  EXPECT_LT(measured, 12 * block_bytes);
}

// ---------------------------------------------------------------------------
// Timer threads keep running while the datapath is saturated ("no PPE is
// reserved ... spawned in any of the PPEs based on availability").

TEST(TimersUnderLoad, ScansProceedDuringSaturation) {
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = 1024;
  cfg.window = 512;
  cfg.slab_pool = 8192;
  Testbed tb(cfg);
  tb.start_straggler_detection(50, sim::Duration::millis(2));
  for (int w = 0; w < 4; ++w) {
    tb.worker(w).start_allreduce(constant_grads(1024 * 4000, 1), 1,
                                 [](AllreduceResult) {});
  }
  tb.simulator().run_until(sim::Time(sim::Duration::millis(10).ns()));
  const auto& timers = tb.router().pfe(0).timers();
  EXPECT_GT(timers.fires(), 200u);
  // Under full datapath load a few fires may find no free thread, but
  // the vast majority must be served.
  EXPECT_LT(timers.skips(), timers.fires() / 4);
}

}  // namespace
