// Determinism regression tests for the event core.
//
// The queue's contract (sim/event_queue.hpp): same-timestamp events fire
// in schedule order, cancellation is exact, and none of it depends on heap
// internals. These tests pin that contract down two ways: a scripted
// schedule/cancel/reschedule scenario whose (time, label) pop order is
// digested and compared against a golden constant (so an accidental
// tie-break change fails loudly, not just differently), and a seeded
// fig13-scale testbed run executed twice with identical event counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "trioml/testbed.hpp"

namespace {

// FNV-1a over the little-endian bytes of each value: platform-independent.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

// A deterministic LCG so the scenario is identical on every platform.
struct Lcg {
  std::uint64_t s = 0x243f6a8885a308d3ull;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
};

/// Schedules batches of events crowded onto few distinct timestamps (maximal
/// tie-breaking), cancels every third, reschedules replacements at the *same*
/// instant, and lets callbacks cancel sibling events and schedule follow-ups
/// at their own firing time. Returns the FNV digest of the (time, label) pop
/// sequence.
std::uint64_t run_scripted_scenario() {
  sim::Simulator sim;
  std::uint64_t digest = kFnvOffset;
  std::uint64_t next_label = 0;
  Lcg rng;

  std::vector<sim::EventId> ids;
  ids.reserve(512);

  auto record = [&sim, &digest](std::uint64_t label) {
    mix(digest, static_cast<std::uint64_t>(sim.now().ns()));
    mix(digest, label);
  };

  for (int round = 0; round < 8; ++round) {
    ids.clear();
    // 64 events on just 4 distinct timestamps.
    for (int i = 0; i < 64; ++i) {
      const sim::Duration delay(static_cast<std::int64_t>(rng.next() % 4));
      const std::uint64_t label = next_label++;
      ids.push_back(sim.schedule_in(delay, [&record, &sim, &next_label,
                                            label] {
        record(label);
        // Every fourth firing schedules a follow-up at its own instant:
        // it must run after everything already queued for this instant.
        if (label % 4 == 0) {
          const std::uint64_t follow = next_label++;
          sim.schedule_in(sim::Duration(0),
                          [&record, follow] { record(follow); });
        }
      }));
    }
    // Cancel every third event; reschedule a replacement at the same time
    // bucket so the replacement's (later) sequence number decides order.
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      if (sim.cancel(ids[i])) {
        const std::uint64_t label = next_label++;
        sim.schedule_in(sim::Duration(static_cast<std::int64_t>(i % 4)),
                        [&record, label] { record(label); });
      }
    }
    // Double-cancel is a no-op and must not perturb anything.
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      EXPECT_FALSE(sim.cancel(ids[i]));
    }
    sim.run();
  }
  return digest;
}

TEST(Determinism, ScriptedPopOrderMatchesGolden) {
  const std::uint64_t first = run_scripted_scenario();
  const std::uint64_t second = run_scripted_scenario();
  EXPECT_EQ(first, second);
  // Golden digest of the (time, label) pop order, cancel/reschedule
  // interleavings included. A change here means the FIFO tie-break or
  // cancellation semantics changed — that breaks reproducibility of every
  // seeded experiment, so it must be deliberate.
  EXPECT_EQ(first, 0x3ee760a57d91b3f7ull);
}

TEST(Determinism, Fig13ScaleRunIsExactlyRepeatable) {
  // A fig13-style aggregation scenario: 4 workers, packet-level, injected
  // loss (seeded), retransmit timers arming and cancelling constantly.
  auto run_once = [](std::uint64_t& events, std::int64_t& final_ns) {
    trioml::TestbedConfig cfg;
    cfg.num_workers = 4;
    cfg.grads_per_packet = 256;
    cfg.window = 16;
    trioml::Testbed tb(cfg);
    for (int w = 0; w < 4; ++w) {
      // Loss on the uplink only: a lost *request* is recovered by the
      // worker's retransmit timer; a lost *reply* would need the age-out
      // sweep, which this test leaves off to keep the run bounded.
      tb.link(w).a_to_b().set_loss(0.01, 7 + static_cast<std::uint64_t>(w));
      tb.worker(w).enable_retransmit(sim::Duration::micros(200));
    }
    int done = 0;
    for (int w = 0; w < 4; ++w) {
      std::vector<std::uint32_t> g(256 * 50, 1);
      tb.worker(w).start_allreduce(std::move(g), 1,
                                   [&](trioml::AllreduceResult) { ++done; });
    }
    tb.simulator().run();
    EXPECT_EQ(done, 4);
    events = tb.simulator().events_executed();
    final_ns = tb.simulator().now().ns();
  };
  std::uint64_t events_a = 0, events_b = 0;
  std::int64_t ns_a = 0, ns_b = 0;
  run_once(events_a, ns_a);
  run_once(events_b, ns_b);
  EXPECT_GT(events_a, 0u);
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(ns_a, ns_b);
}

}  // namespace
