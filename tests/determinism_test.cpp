// Determinism regression tests for the event core.
//
// The queue's contract (sim/event_queue.hpp): same-timestamp events fire
// in schedule order, cancellation is exact, and none of it depends on heap
// internals. These tests pin that contract down two ways: a scripted
// schedule/cancel/reschedule scenario whose (time, label) pop order is
// digested and compared against a golden constant (so an accidental
// tie-break change fails loudly, not just differently), and a seeded
// fig13-scale testbed run executed twice with identical event counts.
// The shard-invariance suite extends the same contract to the parallel
// engine (sim/shard.hpp): a cluster run — clean, lossy, chaos-injected or
// failover-scripted — must produce bit-identical results, event counts
// and fault-log digests at --shards 1, 2 and the maximum shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "sim/simulator.hpp"
#include "trioml/testbed.hpp"

namespace {

// FNV-1a over the little-endian bytes of each value: platform-independent.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

// A deterministic LCG so the scenario is identical on every platform.
struct Lcg {
  std::uint64_t s = 0x243f6a8885a308d3ull;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  }
};

/// Schedules batches of events crowded onto few distinct timestamps (maximal
/// tie-breaking), cancels every third, reschedules replacements at the *same*
/// instant, and lets callbacks cancel sibling events and schedule follow-ups
/// at their own firing time. Returns the FNV digest of the (time, label) pop
/// sequence.
std::uint64_t run_scripted_scenario() {
  sim::Simulator sim;
  std::uint64_t digest = kFnvOffset;
  std::uint64_t next_label = 0;
  Lcg rng;

  std::vector<sim::EventId> ids;
  ids.reserve(512);

  auto record = [&sim, &digest](std::uint64_t label) {
    mix(digest, static_cast<std::uint64_t>(sim.now().ns()));
    mix(digest, label);
  };

  for (int round = 0; round < 8; ++round) {
    ids.clear();
    // 64 events on just 4 distinct timestamps.
    for (int i = 0; i < 64; ++i) {
      const sim::Duration delay(static_cast<std::int64_t>(rng.next() % 4));
      const std::uint64_t label = next_label++;
      ids.push_back(sim.schedule_in(delay, [&record, &sim, &next_label,
                                            label] {
        record(label);
        // Every fourth firing schedules a follow-up at its own instant:
        // it must run after everything already queued for this instant.
        if (label % 4 == 0) {
          const std::uint64_t follow = next_label++;
          sim.schedule_in(sim::Duration(0),
                          [&record, follow] { record(follow); });
        }
      }));
    }
    // Cancel every third event; reschedule a replacement at the same time
    // bucket so the replacement's (later) sequence number decides order.
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      if (sim.cancel(ids[i])) {
        const std::uint64_t label = next_label++;
        sim.schedule_in(sim::Duration(static_cast<std::int64_t>(i % 4)),
                        [&record, label] { record(label); });
      }
    }
    // Double-cancel is a no-op and must not perturb anything.
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      EXPECT_FALSE(sim.cancel(ids[i]));
    }
    sim.run();
  }
  return digest;
}

TEST(Determinism, ScriptedPopOrderMatchesGolden) {
  const std::uint64_t first = run_scripted_scenario();
  const std::uint64_t second = run_scripted_scenario();
  EXPECT_EQ(first, second);
  // Golden digest of the (time, label) pop order, cancel/reschedule
  // interleavings included. A change here means the FIFO tie-break or
  // cancellation semantics changed — that breaks reproducibility of every
  // seeded experiment, so it must be deliberate.
  EXPECT_EQ(first, 0x3ee760a57d91b3f7ull);
}

TEST(Determinism, Fig13ScaleRunIsExactlyRepeatable) {
  // A fig13-style aggregation scenario: 4 workers, packet-level, injected
  // loss (seeded), retransmit timers arming and cancelling constantly.
  auto run_once = [](std::uint64_t& events, std::int64_t& final_ns) {
    trioml::TestbedConfig cfg;
    cfg.num_workers = 4;
    cfg.grads_per_packet = 256;
    cfg.window = 16;
    trioml::Testbed tb(cfg);
    for (int w = 0; w < 4; ++w) {
      // Loss on the uplink only: a lost *request* is recovered by the
      // worker's retransmit timer; a lost *reply* would need the age-out
      // sweep, which this test leaves off to keep the run bounded.
      tb.link(w).a_to_b().set_loss(0.01, 7 + static_cast<std::uint64_t>(w));
      tb.worker(w).enable_retransmit(sim::Duration::micros(200));
    }
    int done = 0;
    for (int w = 0; w < 4; ++w) {
      std::vector<std::uint32_t> g(256 * 50, 1);
      tb.worker(w).start_allreduce(std::move(g), 1,
                                   [&](trioml::AllreduceResult) { ++done; });
    }
    tb.simulator().run();
    EXPECT_EQ(done, 4);
    events = tb.simulator().events_executed();
    final_ns = tb.simulator().now().ns();
  };
  std::uint64_t events_a = 0, events_b = 0;
  std::int64_t ns_a = 0, ns_b = 0;
  run_once(events_a, ns_a);
  run_once(events_b, ns_b);
  EXPECT_GT(events_a, 0u);
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(ns_a, ns_b);
}

// ---------------------------------------------------------------------------
// Shard-count invariance: the parallel engine's determinism contract.

/// FNV-1a over every worker's result gradient bits plus the completion
/// count, last-arrival time and final engine clock.
std::uint64_t run_digest(const cluster::AllreduceRun& run, sim::Time now) {
  std::uint64_t h = kFnvOffset;
  mix(h, std::uint64_t(run.finished));
  mix(h, std::uint64_t(run.finish.ns()));
  mix(h, std::uint64_t(now.ns()));
  for (const trioml::AllreduceResult& r : run.results) {
    mix(h, r.grads.size());
    mix(h, r.degraded_blocks);
    for (float g : r.grads) {
      std::uint32_t bits;
      std::memcpy(&bits, &g, sizeof bits);
      mix(h, bits);
    }
  }
  return h;
}

struct ShardOutcome {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t fault_digest = 0;
  int effective_shards = 0;
};

/// The shard counts every invariance scenario runs at: serial, two-way,
/// and one shard per router (the maximum the engine allows).
std::vector<int> shard_counts(int routers) { return {1, 2, routers}; }

void expect_invariant(const std::vector<ShardOutcome>& outcomes) {
  ASSERT_GE(outcomes.size(), 2u);
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].digest, outcomes[0].digest)
        << "result digest diverges at " << outcomes[i].effective_shards
        << " shards";
    EXPECT_EQ(outcomes[i].events, outcomes[0].events)
        << "event count diverges at " << outcomes[i].effective_shards
        << " shards";
    EXPECT_EQ(outcomes[i].fault_digest, outcomes[0].fault_digest)
        << "fault log diverges at " << outcomes[i].effective_shards
        << " shards";
  }
}

TEST(ShardInvariance, CleanAllreduceIsShardCountInvariant) {
  // 4 racks x 2 workers: 5 router domains. The fabric latency is the
  // engine lookahead; 2 us is the fig17 configuration.
  std::vector<ShardOutcome> outcomes;
  for (const int shards : shard_counts(/*routers=*/5)) {
    cluster::ClusterSpec spec;
    spec.racks = 4;
    spec.workers_per_rack = 2;
    spec.grads_per_packet = 128;
    spec.slab_pool = 1024;
    spec.fabric_link.latency = sim::Duration::micros(2);
    spec.shards = shards;
    cluster::Cluster cl(spec);
    EXPECT_EQ(cl.num_shards(), std::min(shards, 5));
    const auto grads = cluster::patterned_gradients(8, 128 * 8);
    const auto run = cluster::run_allreduce(cl, grads);
    EXPECT_EQ(run.finished, 8);
    EXPECT_TRUE(
        cluster::bit_identical(run.results, cluster::testbed_baseline(spec, grads)));
    outcomes.push_back({run_digest(run, cl.engine().now()),
                        cl.engine().events_executed(), 0, cl.num_shards()});
  }
  expect_invariant(outcomes);
}

TEST(ShardInvariance, LossyAllreduceIsShardCountInvariant) {
  // The fig13-style lossy regime: seeded i.i.d. drops on the host links
  // and on the fabric uplinks, recovered by worker retransmission. Loss
  // decisions are made sender-side from per-direction seeded RNGs, so
  // they are part of the simulation, not of the shard packing.
  std::vector<ShardOutcome> outcomes;
  for (const int shards : shard_counts(/*routers=*/5)) {
    cluster::ClusterSpec spec;
    spec.racks = 4;
    spec.workers_per_rack = 2;
    spec.grads_per_packet = 128;
    spec.slab_pool = 1024;
    spec.host_link.loss = 0.01;
    spec.fabric_link.latency = sim::Duration::micros(2);
    spec.shards = shards;
    cluster::Cluster cl(spec);
    for (int r = 0; r < spec.racks; ++r) {
      cl.fabric_link(r).a_to_b().set_loss(0.05, 91 + std::uint64_t(r));
    }
    for (int w = 0; w < 8; ++w) {
      cl.worker(w).enable_retransmit(sim::Duration::micros(200));
    }
    const auto grads = cluster::patterned_gradients(8, 128 * 8);
    const auto run = cluster::run_allreduce(
        cl, grads, /*gen_id=*/1, sim::Time(sim::Duration::millis(100).ns()));
    EXPECT_EQ(run.finished, 8);
    outcomes.push_back({run_digest(run, cl.engine().now()),
                        cl.engine().events_executed(), 0, cl.num_shards()});
  }
  expect_invariant(outcomes);
  EXPECT_GT(outcomes[0].events, 0u);
}

TEST(ShardInvariance, ChaosReplayIsShardCountInvariant) {
  // A chaos schedule exercising every windowed-fault recovery path: the
  // injector runs each fault as a global action with all shards parked,
  // so the fault log digest — the replay fingerprint — must match the
  // serial engine's exactly.
  const faults::FaultSchedule schedule = faults::FaultSchedule::parse(R"(
    at 50us  flap fabric:0 for 40us
    at 30us  burst host:* p_enter=0.02 p_exit=0.3 for 100us
    at 80us  loss fabric:1 0.05 for 60us
    at 60us  crash worker:3
    at 220us restart worker:3
    at 120us drop-buckets spine job=1
  )");
  std::vector<ShardOutcome> outcomes;
  for (const int shards : shard_counts(/*routers=*/3)) {
    cluster::ClusterSpec spec;
    spec.racks = 2;
    spec.workers_per_rack = 2;
    spec.grads_per_packet = 128;
    spec.slab_pool = 1024;
    spec.fabric_link.latency = sim::Duration::micros(2);
    spec.shards = shards;
    cluster::Cluster cl(spec);
    faults::FaultInjector injector(cl.simulator(), nullptr);
    injector.bind(cl);
    injector.arm(schedule);
    for (int w = 0; w < 4; ++w) {
      cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(5),
                                              /*retry_budget=*/10,
                                              sim::Duration::millis(20));
    }
    cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));
    const auto grads = cluster::patterned_gradients(4, 128 * 8);
    const auto run = cluster::run_allreduce(
        cl, grads, /*gen_id=*/1, sim::Time(sim::Duration::millis(60).ns()));
    cl.stop_straggler_detection();
    EXPECT_GT(injector.faults_injected(), 0u);
    outcomes.push_back({run_digest(run, cl.engine().now()),
                        cl.engine().events_executed(), injector.digest(),
                        cl.num_shards()});
  }
  expect_invariant(outcomes);
}

TEST(ShardInvariance, ScriptedFailoverIsShardCountInvariant) {
  // Spine power loss at 100 us, scripted failover to the standby spine at
  // 160 us — the control plane as two global actions (the heartbeat-driven
  // RecoveryManager is a --shards 1 feature; scripted failover is the
  // shard-safe equivalent, docs/performance.md).
  std::vector<ShardOutcome> outcomes;
  for (const int shards : shard_counts(/*routers=*/4)) {
    cluster::ClusterSpec spec;
    spec.racks = 2;
    spec.workers_per_rack = 4;
    spec.grads_per_packet = 128;
    spec.slab_pool = 1024;
    spec.backup_spine = true;
    spec.host_link.gbps = 10.0;  // stretch the epoch across the kill
    spec.fabric_link.latency = sim::Duration::micros(2);
    spec.shards = shards;
    cluster::Cluster cl(spec);
    for (int w = 0; w < 8; ++w) {
      cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(1),
                                              /*retry_budget=*/50,
                                              sim::Duration::millis(8));
    }
    faults::FaultInjector injector(cl.simulator(), nullptr);
    injector.bind(cl);
    faults::FaultSchedule schedule;
    schedule.kill(sim::Time() + sim::Duration::micros(100),
                  faults::FaultSchedule::spine_router());
    injector.arm(schedule);
    cl.engine().schedule_global(
        sim::Time() + sim::Duration::micros(160), [&cl] {
          cl.spine_app().invalidate_active_blocks();
          cl.fail_over_to_backup();
        });
    const auto grads = cluster::patterned_gradients(8, 128 * 8);
    const auto run = cluster::run_allreduce(
        cl, grads, /*gen_id=*/1, sim::Time(sim::Duration::millis(100).ns()));
    EXPECT_EQ(run.finished, 8);
    EXPECT_TRUE(cl.on_backup_spine());
    outcomes.push_back({run_digest(run, cl.engine().now()),
                        cl.engine().events_executed(), injector.digest(),
                        cl.num_shards()});
  }
  expect_invariant(outcomes);
}

}  // namespace
