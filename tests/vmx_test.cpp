// Tests for the vMX Virtual Forwarding Plane (paper §3.1): the x86
// development environment for Microcode programs.
#include <gtest/gtest.h>

#include "microcode/vmx.hpp"

namespace {

using microcode::vmx::VirtualForwardingPlane;

const char* kFilter = R"(
  struct ether_t { dmac : 48; smac : 48; etype : 16; };
  struct ipv4_t { ver : 4; ihl : 4; tos : 8; len : 16; };
  virtual const DROP_CNT_BASE = 64;
  memory ether_t *ether_ptr = 0;
  process_ether:
  begin
    ir0 = 0;
    if (ether_ptr->etype == 0x0800) { goto process_ip; }
    goto count_dropped;
  end
  process_ip:
  begin
    const ipv4_t *ipv4_addr = ether_ptr + sizeof(ether_t);
    ir0 = 1;
    if (ipv4_addr->ver == 4 && ipv4_addr->ihl == 5) { goto fwd; }
    goto count_dropped;
  end
  count_dropped:
  begin
    const : addr = DROP_CNT_BASE + ir0 * 2;
    CounterIncPhys(addr, r_work.pkt_len);
    goto drop;
  end
  fwd:
  begin
    Forward(0);
    Exit();
  end
  drop:
  begin
    Drop();
  end
)";

net::Buffer ip_frame(std::uint16_t etype = 0x0800, std::uint8_t ihl = 5) {
  std::vector<std::uint8_t> payload(60, 0);
  auto f = net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                net::Ipv4Addr::from_string("10.0.0.1"),
                                net::Ipv4Addr::from_string("10.0.0.2"), 1, 2,
                                payload);
  f.set_u16(12, etype);
  f.set_u8(net::UdpFrameLayout::kIpOff,
           static_cast<std::uint8_t>(4 << 4 | ihl));
  return f;
}

TEST(Vmx, RunsTheFilterProgramPerPacket) {
  VirtualForwardingPlane vfp(microcode::compile(kFilter));
  const auto fwd = vfp.process(ip_frame());
  EXPECT_TRUE(fwd.forwarded);
  EXPECT_EQ(fwd.egress_port, 1);  // nexthop 0 -> port 1
  EXPECT_GT(fwd.instructions, 0u);
  EXPECT_GT(fwd.simulated_time.ns(), 0);

  const auto dropped = vfp.process(ip_frame(0x0806));
  EXPECT_FALSE(dropped.forwarded);

  const auto opts = vfp.process(ip_frame(0x0800, 6));
  EXPECT_FALSE(opts.forwarded);
  EXPECT_EQ(vfp.packets_processed(), 3u);
}

TEST(Vmx, SharedMemoryInspectableBetweenPackets) {
  VirtualForwardingPlane vfp(microcode::compile(kFilter));
  for (int i = 0; i < 4; ++i) vfp.process(ip_frame(0x0806));
  for (int i = 0; i < 2; ++i) vfp.process(ip_frame(0x0800, 6));
  // Word-addressed counters: non-IP at 64, IP-options at 66.
  EXPECT_EQ(vfp.sms().peek_u64(64 * 8), 4u);
  EXPECT_EQ(vfp.sms().peek_u64(66 * 8), 2u);
}

TEST(Vmx, ForwardedFrameCarriesHeadModifications) {
  // A program that rewrites the EtherType before forwarding: the VFP's
  // verdict exposes the modified frame, which is how a developer checks
  // rewrites without hardware.
  const char* rewriter = R"(
    struct ether_t { dmac : 48; smac : 48; etype : 16; };
    memory ether_t *e = 0;
    main:
    begin
      e->etype = 0x88b5;
      goto out;
    end
    out:
    begin
      Forward(0);
      Exit();
    end
  )";
  VirtualForwardingPlane vfp(microcode::compile(rewriter));
  const auto v = vfp.process(ip_frame());
  ASSERT_TRUE(v.forwarded);
  ASSERT_TRUE(v.packet != nullptr);
  EXPECT_EQ(v.packet->frame().u16(12), 0x88b5);
}

TEST(Vmx, InstructionCountsMatchHardwareModel) {
  // Per the paper, the VFP runs the same Microcode engine: instruction
  // counts must be identical to the hardware path (only wall-clock
  // differs). The clean-IP path of the filter runs 4 instructions
  // (ether, ip, fwd block's Forward+Exit accounting).
  VirtualForwardingPlane vfp(microcode::compile(kFilter));
  const auto a = vfp.process(ip_frame());
  const auto b = vfp.process(ip_frame());
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_GE(a.instructions, 3u);
  EXPECT_LE(a.instructions, 8u);
}

}  // namespace
