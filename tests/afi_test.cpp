// Tests for the Advanced Forwarding Interface sandbox (paper §3.1): a
// third-party-managed section of the forwarding path graph whose
// operations can be added, removed and reordered at runtime.
#include <gtest/gtest.h>

#include "trio/afi.hpp"
#include "trio/router.hpp"

namespace {

using trio::afi::AfiHost;
using trio::afi::CountOp;
using trio::afi::DefaultForwardOp;
using trio::afi::FilterOp;
using trio::afi::NexthopOp;
using trio::afi::PoliceOp;
using trio::afi::Sandbox;
using trio::afi::SetDscpOp;

class AfiTest : public ::testing::Test {
 protected:
  AfiTest() : router(sim, trio::Calibration{}, 1, 4), host(router.pfe(0)) {
    // Default route: everything out of port 1.
    const auto nh = router.forwarding().add_nexthop(
        trio::NexthopUnicast{1, {}});
    router.forwarding().add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0,
                                  nh);
    router.attach_port_sink(1, [this](net::PacketPtr p) {
      out.push_back(std::move(p));
    });
    router.attach_port_sink(2, [this](net::PacketPtr p) {
      out_alt.push_back(std::move(p));
    });
  }

  net::Buffer frame(const std::string& src = "10.0.0.1",
                    std::uint16_t dst_port = 2000) {
    std::vector<std::uint8_t> payload(100, 0);
    return net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                net::Ipv4Addr::from_string(src),
                                net::Ipv4Addr::from_string("10.9.9.9"), 999,
                                dst_port, payload);
  }

  void inject(net::Buffer f) {
    router.receive(net::Packet::make(std::move(f)), 0);
  }

  sim::Simulator sim;
  trio::Router router;
  AfiHost host;
  std::vector<net::PacketPtr> out;
  std::vector<net::PacketPtr> out_alt;
};

TEST_F(AfiTest, NonMatchingTrafficTakesDefaultPath) {
  host.create_sandbox("s", [](const net::Packet&) { return false; });
  host.attach();
  inject(frame());
  sim.run();
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AfiTest, EmptySandboxFallsThroughToForwarding) {
  host.create_sandbox("s", [](const net::Packet&) { return true; });
  host.attach();
  inject(frame());
  sim.run();
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AfiTest, CountOpCountsAndForwards) {
  Sandbox* sb = host.create_sandbox("s", [](const net::Packet&) { return true; });
  const auto ctr = router.pfe(0).sms().alloc_sram(16, 16);
  sb->add(CountOp{ctr});
  host.attach();
  for (int i = 0; i < 5; ++i) inject(frame());
  sim.run();
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(router.pfe(0).sms().peek_u64(ctr), 5u);
  EXPECT_EQ(sb->packets(), 5u);
}

TEST_F(AfiTest, FilterOpDropsMatching) {
  Sandbox* sb = host.create_sandbox("s", [](const net::Packet&) { return true; });
  sb->add(FilterOp{[](const net::Buffer& head) {
    // Drop UDP destination port 7777.
    return net::UdpHeader::parse(head, net::UdpFrameLayout::kUdpOff)
               .dst_port == 7777;
  }});
  host.attach();
  inject(frame("10.0.0.1", 7777));
  inject(frame("10.0.0.1", 2000));
  sim.run();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(sb->drops(), 1u);
}

TEST_F(AfiTest, PoliceOpThrottles) {
  Sandbox* sb = host.create_sandbox("s", [](const net::Packet&) { return true; });
  const auto pol = router.pfe(0).sms().alloc_sram(32, 32);
  const auto dropctr = router.pfe(0).sms().alloc_sram(16, 16);
  trio::PolicerConfig pc;
  pc.rate_bytes_per_sec = 1;  // effectively burst-only
  pc.burst_bytes = 300;       // ~2 frames of 142 B
  router.pfe(0).sms().configure_policer(pol, pc);
  sb->add(PoliceOp{pol, dropctr});
  host.attach();
  for (int i = 0; i < 5; ++i) inject(frame());
  sim.run();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(sb->drops(), 3u);
  EXPECT_EQ(router.pfe(0).sms().peek_u64(dropctr), 3u);
}

TEST_F(AfiTest, SetDscpRewritesHeader) {
  Sandbox* sb = host.create_sandbox("s", [](const net::Packet&) { return true; });
  sb->add(SetDscpOp{0x2e});  // EF
  host.attach();
  inject(frame());
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  const auto ip =
      net::Ipv4Header::parse(out[0]->frame(), net::UdpFrameLayout::kIpOff);
  EXPECT_EQ(ip.dscp, 0x2e);
}

TEST_F(AfiTest, NexthopOpOverridesRouting) {
  Sandbox* sb = host.create_sandbox("s", [](const net::Packet&) { return true; });
  const auto nh2 = router.forwarding().add_nexthop(
      trio::NexthopUnicast{2, {}});
  sb->add(NexthopOp{nh2});
  host.attach();
  inject(frame());
  sim.run();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out_alt.size(), 1u);
}

TEST_F(AfiTest, OperationsComposeInOrder) {
  // count -> police -> dscp -> default forward.
  Sandbox* sb = host.create_sandbox("s", [](const net::Packet&) { return true; });
  auto& sms = router.pfe(0).sms();
  const auto ctr = sms.alloc_sram(16, 16);
  const auto pol = sms.alloc_sram(32, 32);
  trio::PolicerConfig pc;
  pc.rate_bytes_per_sec = 1;
  pc.burst_bytes = 150;  // one frame
  sms.configure_policer(pol, pc);
  sb->add(CountOp{ctr});
  sb->add(PoliceOp{pol, 0});
  sb->add(SetDscpOp{9});
  sb->add(DefaultForwardOp{});
  host.attach();
  inject(frame());
  inject(frame());
  sim.run();
  // Both counted (count precedes police); one policed away.
  EXPECT_EQ(sms.peek_u64(ctr), 2u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(net::Ipv4Header::parse(out[0]->frame(),
                                   net::UdpFrameLayout::kIpOff)
                .dscp,
            9);
}

TEST_F(AfiTest, RemoveAndReorderAtRuntime) {
  Sandbox* sb = host.create_sandbox("s", [](const net::Packet&) { return true; });
  auto& sms = router.pfe(0).sms();
  const auto ctr_a = sms.alloc_sram(16, 16);
  const auto ctr_b = sms.alloc_sram(16, 16);
  const auto id_filter = sb->add(FilterOp{[](const net::Buffer&) {
    return true;  // drop everything
  }});
  const auto id_count = sb->add(CountOp{ctr_a});
  host.attach();

  inject(frame());
  sim.run();
  // Filter first: dropped before the counter.
  EXPECT_EQ(sms.peek_u64(ctr_a), 0u);
  EXPECT_EQ(sb->drops(), 1u);

  // Third-party reconfiguration: move the counter ahead of the filter.
  ASSERT_TRUE(sb->reorder(id_count, 0));
  inject(frame());
  sim.run();
  EXPECT_EQ(sms.peek_u64(ctr_a), 1u);
  EXPECT_EQ(sb->drops(), 2u);

  // Remove the filter entirely; traffic flows and both counters hit.
  ASSERT_TRUE(sb->remove(id_filter));
  const auto id_b = sb->insert_before(id_count, CountOp{ctr_b});
  (void)id_b;
  inject(frame());
  sim.run();
  EXPECT_EQ(sms.peek_u64(ctr_a), 2u);
  EXPECT_EQ(sms.peek_u64(ctr_b), 1u);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(sb->remove(id_filter));  // already gone
}

TEST_F(AfiTest, MultipleSandboxesFirstMatchWins) {
  Sandbox* sa = host.create_sandbox("a", [](const net::Packet& p) {
    return net::Ipv4Header::parse(p.frame(), net::UdpFrameLayout::kIpOff)
               .src.value() == net::Ipv4Addr::from_string("10.0.0.1").value();
  });
  Sandbox* sb = host.create_sandbox("b", [](const net::Packet&) { return true; });
  sa->add(FilterOp{[](const net::Buffer&) { return true; }});
  host.attach();
  inject(frame("10.0.0.1"));
  inject(frame("10.0.0.2"));
  sim.run();
  EXPECT_EQ(sa->packets(), 1u);
  EXPECT_EQ(sb->packets(), 1u);
  EXPECT_EQ(out.size(), 1u);  // only the 10.0.0.2 packet survived
}

}  // namespace
