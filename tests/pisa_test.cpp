#include <gtest/gtest.h>

#include "pisa/pipeline.hpp"
#include "pisa/switch.hpp"
#include "switchml/switchml.hpp"
#include "trioml/wire_format.hpp"

namespace {

// ---------------------------------------------------------------------------
// PISA substrate

TEST(PisaStage, SingleStatefulAccessEnforced) {
  pisa::Stage st(0);
  const int arr = st.add_register_array(8);
  st.begin_traversal();
  st.stateful_rmw(arr, 0, [](std::uint32_t v) { return v + 1; });
  // Second access to the same array in one traversal violates PISA.
  EXPECT_THROW(st.stateful_read(arr, 1), pisa::PisaConstraintViolation);
  // A new traversal resets the budget.
  st.begin_traversal();
  EXPECT_NO_THROW(st.stateful_read(arr, 1));
}

TEST(PisaStage, DistinctArraysIndependent) {
  pisa::Stage st(0);
  const int a = st.add_register_array(4);
  const int b = st.add_register_array(4);
  st.begin_traversal();
  EXPECT_NO_THROW(st.stateful_rmw(a, 0, [](std::uint32_t v) { return v + 1; }));
  EXPECT_NO_THROW(st.stateful_rmw(b, 0, [](std::uint32_t v) { return v + 2; }));
}

TEST(PisaPipeline, TraversalLatencyIsFixed) {
  sim::Simulator sim;
  pisa::PipelineConfig cfg;
  cfg.stages = 12;
  cfg.stage_latency = sim::Duration::nanos(40);
  cfg.parser_latency = sim::Duration::nanos(100);
  pisa::Pipeline pipe(sim, cfg);
  EXPECT_EQ(pipe.traversal_latency().ns(), 100 + 12 * 40);

  sim::Time out_time;
  pipe.set_deparser([&](pisa::Phv&&) { out_time = sim.now(); });
  pipe.inject(net::Packet::make(net::Buffer(100)));
  sim.run();
  EXPECT_EQ(out_time.ns(), 100 + 12 * 40);
}

TEST(PisaPipeline, RecirculationConsumesFrontEndSlots) {
  sim::Simulator sim;
  pisa::PipelineConfig cfg;
  cfg.stages = 2;
  pisa::Pipeline pipe(sim, cfg);
  int passes = 0;
  pipe.stage(0).set_logic([&](pisa::Phv& phv, pisa::Stage&) {
    if (passes++ == 0) phv.recirculate = true;
  });
  int out = 0;
  pipe.set_deparser([&](pisa::Phv&&) { ++out; });
  pipe.inject(net::Packet::make(net::Buffer(100)));
  sim.run();
  EXPECT_EQ(out, 1);
  EXPECT_EQ(pipe.recirculations(), 1u);
  EXPECT_EQ(pipe.packets_in(), 2u);  // original + recirculated pass
}

TEST(PisaSwitch, PortToPipelineMapping) {
  sim::Simulator sim;
  pisa::SwitchConfig cfg;
  cfg.pipelines = 4;
  cfg.ports_per_pipeline = 16;
  pisa::Switch sw(sim, cfg);
  EXPECT_EQ(sw.num_ports(), 64);
  EXPECT_EQ(sw.pipeline_of_port(0), 0);
  EXPECT_EQ(sw.pipeline_of_port(15), 0);
  EXPECT_EQ(sw.pipeline_of_port(16), 1);
  EXPECT_EQ(sw.pipeline_of_port(63), 3);
}

TEST(PisaSwitch, MulticastGroupDelivery) {
  sim::Simulator sim;
  pisa::SwitchConfig cfg;
  pisa::Switch sw(sim, cfg);
  sw.set_mcast_group(1, {2, 3, 5});
  sw.pipeline(0).set_parser([](pisa::Phv& phv) {
    phv.meta.assign(1, 0);
    phv.mcast_group = 1;
    return true;
  });
  int delivered = 0;
  for (int p : {2, 3, 5}) {
    sw.attach_port_sink(p, [&](net::PacketPtr) { ++delivered; });
  }
  sw.receive(net::Packet::make(net::Buffer(128)), 0);
  sim.run();
  EXPECT_EQ(delivered, 3);
}

// ---------------------------------------------------------------------------
// SwitchML on the PISA switch

class SwitchMlTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 4;

  SwitchMlTest() : sw_(sim_, switch_config()) {
    switchml::SwitchMlConfig cfg;
    cfg.num_workers = kWorkers;
    cfg.pool_size = 8;
    cfg.grads_per_packet = 64;
    std::vector<int> ports;
    for (int i = 0; i < kWorkers; ++i) ports.push_back(i);
    agg_ = std::make_unique<switchml::SwitchMlAggregator>(sw_, cfg, ports);

    for (int i = 0; i < kWorkers; ++i) {
      links_.push_back(std::make_unique<net::Link>(
          sim_, 100.0, sim::Duration::micros(1)));
      switchml::SwitchMlWorker::Config wc;
      wc.worker_id = static_cast<std::uint8_t>(i);
      wc.num_workers = kWorkers;
      wc.ip = net::Ipv4Addr::from_octets(10, 1, 0, static_cast<std::uint8_t>(i + 1));
      wc.switch_ip = net::Ipv4Addr::from_octets(10, 1, 0, 254);
      wc.pool_size = 8;
      wc.grads_per_packet = 64;
      workers_.push_back(std::make_unique<switchml::SwitchMlWorker>(
          sim_, wc, links_.back()->a_to_b()));
      links_.back()->attach(*workers_.back(), 0, sw_, i);
      sw_.attach_port(i, links_.back()->b_to_a());
    }
  }

  static pisa::SwitchConfig switch_config() {
    pisa::SwitchConfig cfg;
    cfg.pipelines = 4;
    cfg.ports_per_pipeline = 16;
    return cfg;
  }

  sim::Simulator sim_;
  pisa::Switch sw_;
  std::unique_ptr<switchml::SwitchMlAggregator> agg_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<switchml::SwitchMlWorker>> workers_;
};

TEST_F(SwitchMlTest, AggregatesAcrossWorkers) {
  const std::size_t n = 64 * 5;  // 5 blocks
  int done = 0;
  std::vector<std::vector<std::uint32_t>> results(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    std::vector<std::uint32_t> grads(n);
    for (std::size_t i = 0; i < n; ++i) {
      grads[i] = static_cast<std::uint32_t>((w + 1) * (i + 1));
    }
    workers_[static_cast<std::size_t>(w)]->start_allreduce(
        std::move(grads), 1, [&, w](std::vector<std::uint32_t> r) {
          results[static_cast<std::size_t>(w)] = std::move(r);
          ++done;
        });
  }
  sim_.run();
  ASSERT_EQ(done, kWorkers);
  // Sum over w of (w+1)*(i+1) = 10*(i+1).
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(results[0][i], 10 * (i + 1)) << i;
    EXPECT_EQ(results[3][i], results[0][i]);
  }
  EXPECT_EQ(agg_->completions(), 5u);
}

TEST_F(SwitchMlTest, SlotsReusedAcrossShadowSets) {
  // 40 blocks through a pool of 8 (x2 sets): every slot used repeatedly.
  const std::size_t n = 64 * 40;
  int done = 0;
  for (int w = 0; w < kWorkers; ++w) {
    std::vector<std::uint32_t> grads(n, 1);
    workers_[static_cast<std::size_t>(w)]->start_allreduce(
        std::move(grads), 1,
        [&](std::vector<std::uint32_t> r) {
          ++done;
          for (auto v : r) ASSERT_EQ(v, 4u);
        });
  }
  sim_.run();
  EXPECT_EQ(done, kWorkers);
  EXPECT_EQ(agg_->completions(), 40u);
  EXPECT_EQ(agg_->duplicates(), 0u);
}

TEST_F(SwitchMlTest, StragglerBlocksEveryone) {
  // Worker 3 stalls; SwitchML has no data-plane timers, so NOBODY
  // finishes — the defining contrast with Trio-ML (paper §5).
  int done = 0;
  for (int w = 0; w < kWorkers; ++w) {
    if (w == 3) continue;
    std::vector<std::uint32_t> grads(64, 1);
    workers_[static_cast<std::size_t>(w)]->start_allreduce(
        std::move(grads), 1, [&](std::vector<std::uint32_t>) { ++done; });
  }
  sim_.run_until(sim::Time(sim::Duration::millis(500).ns()));
  EXPECT_EQ(done, 0);
  EXPECT_EQ(agg_->completions(), 0u);

  // The straggler finally contributes; everyone completes.
  std::vector<std::uint32_t> grads(64, 1);
  workers_[3]->start_allreduce(std::move(grads), 1,
                               [&](std::vector<std::uint32_t>) { ++done; });
  sim_.run();
  EXPECT_EQ(done, 4);
}

TEST_F(SwitchMlTest, DuplicateContributionDropped) {
  // Two identical packets from the same worker: the second is counted as
  // a duplicate by the bitmap stage.
  trioml::TrioMlHeader hdr;
  hdr.job_id = 1;
  hdr.block_id = 0;
  hdr.src_id = 0;
  std::vector<std::uint32_t> grads(64, 7);
  for (int i = 0; i < 2; ++i) {
    auto frame = trioml::build_aggregation_frame(
        {2, 0, 0, 0, 2, 1}, {2, 0, 0, 0, 2, 0xfe},
        net::Ipv4Addr::from_octets(10, 1, 0, 1),
        net::Ipv4Addr::from_octets(10, 1, 0, 254), 21000, hdr, grads);
    sw_.receive(net::Packet::make(std::move(frame)), 0);
  }
  sim_.run();
  EXPECT_EQ(agg_->duplicates(), 1u);
}

TEST(SwitchMlConfigTest, RejectsUnsupportedGeometry) {
  sim::Simulator sim;
  pisa::SwitchConfig scfg;
  pisa::Switch sw(sim, scfg);
  switchml::SwitchMlConfig cfg;
  cfg.grads_per_packet = 100;  // neither 64 nor 256
  EXPECT_THROW(switchml::SwitchMlAggregator(sw, cfg, {0, 1}),
               std::invalid_argument);
  cfg.grads_per_packet = 64;
  cfg.num_workers = 40;  // exceeds the 32-bit bitmap
  EXPECT_THROW(switchml::SwitchMlAggregator(sw, cfg, {0, 1}),
               std::invalid_argument);
}

}  // namespace
