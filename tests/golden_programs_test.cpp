// Golden-file tests: the shipped .tmc example programs must keep
// compiling and behaving. The source directory is injected by CMake.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "microcode/compiler.hpp"
#include "microcode/vmx.hpp"

#ifndef TRIO_SOURCE_DIR
#define TRIO_SOURCE_DIR "."
#endif

namespace {

std::string read_program(const std::string& name) {
  const std::string path =
      std::string(TRIO_SOURCE_DIR) + "/examples/microcode/" + name;
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

net::Buffer frame_with_etype(std::uint16_t etype, std::uint8_t ihl = 5) {
  std::vector<std::uint8_t> payload(80, 0);
  auto f = net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                net::Ipv4Addr::from_octets(10, 0, 0, 1),
                                net::Ipv4Addr::from_octets(10, 0, 0, 2), 1, 2,
                                payload);
  f.set_u16(12, etype);
  f.set_u8(net::UdpFrameLayout::kIpOff,
           static_cast<std::uint8_t>(4 << 4 | ihl));
  return f;
}

TEST(GoldenPrograms, FilterTmcCompilesAndFilters) {
  const auto source = read_program("filter.tmc");
  ASSERT_FALSE(source.empty());
  auto program = microcode::compile(source);
  EXPECT_EQ(program->instruction_count(), 5u);

  microcode::vmx::VirtualForwardingPlane vfp(program);
  EXPECT_TRUE(vfp.process(frame_with_etype(0x0800)).forwarded);
  EXPECT_FALSE(vfp.process(frame_with_etype(0x0806)).forwarded);
  EXPECT_FALSE(vfp.process(frame_with_etype(0x0800, 6)).forwarded);
  EXPECT_EQ(vfp.sms().peek_u64(64 * 8), 1u);  // non-IP counter
  EXPECT_EQ(vfp.sms().peek_u64(66 * 8), 1u);  // IP-options counter
}

TEST(GoldenPrograms, ProtostatsTmcClassifiesPerEtherType) {
  const auto source = read_program("protostats.tmc");
  ASSERT_FALSE(source.empty());
  auto program = microcode::compile(source);
  EXPECT_GT(program->bus_slots, 0) << "uses a bus-class temporary";

  microcode::vmx::VirtualForwardingPlane vfp(program);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(vfp.process(frame_with_etype(0x0800)).forwarded);
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(vfp.process(frame_with_etype(0x86dd)).forwarded);
  }
  EXPECT_TRUE(vfp.process(frame_with_etype(0x0806)).forwarded);
  EXPECT_TRUE(vfp.process(frame_with_etype(0x88b5)).forwarded);

  EXPECT_EQ(vfp.sms().peek_u64(32 * 8), 3u);  // IPv4
  EXPECT_EQ(vfp.sms().peek_u64(34 * 8), 2u);  // IPv6
  EXPECT_EQ(vfp.sms().peek_u64(36 * 8), 1u);  // ARP
  EXPECT_EQ(vfp.sms().peek_u64(38 * 8), 1u);  // other
}

}  // namespace
