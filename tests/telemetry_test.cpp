// Tests for the telemetry subsystem: registry semantics (counters,
// gauges, HDR histograms, snapshots), JSON export well-formedness, and a
// golden two-packet router run asserting the Chrome-trace content and
// deterministic counter values.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/headers.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "trio/router.hpp"

namespace {

using telemetry::HistogramData;

/// Minimal structural JSON validator: balanced {} / [] outside strings,
/// escape-aware, ends at depth zero having seen at least one container.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool saw_container = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        saw_container = true;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string && saw_container;
}

TEST(Counter, IncrementAndReadBack) {
  telemetry::Registry registry(true);
  telemetry::Counter c = registry.counter("a.count");
  EXPECT_TRUE(c.live());
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("a.count"), 42u);
  EXPECT_EQ(registry.counter_value("no.such"), 0u);
}

TEST(Counter, SameNameSharesOneCell) {
  telemetry::Registry registry(true);
  telemetry::Counter a = registry.counter("shared");
  telemetry::Counter b = registry.counter("shared");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(registry.counter_value("shared"), 7u);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(Counter, DisabledRegistryHandsOutInertHandles) {
  telemetry::Registry registry(false);
  telemetry::Counter c = registry.counter("x");
  telemetry::Gauge g = registry.gauge("y");
  telemetry::Histogram h = registry.histogram("z");
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(g.live());
  EXPECT_FALSE(h.live());
  c.inc(100);  // all no-ops, no allocation
  g.set(5);
  h.record(123);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(registry.counter_value("x"), 0u);
  EXPECT_EQ(registry.metric_count(), 0u);
}

TEST(Gauge, SetAndAdd) {
  telemetry::Registry registry(true);
  telemetry::Gauge g = registry.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(registry.gauge_value("depth"), 7);
  g.set(-2);  // gauges may go negative
  EXPECT_EQ(registry.gauge_value("depth"), -2);
}

TEST(Histogram, SmallValuesAreExact) {
  HistogramData h;
  for (std::int64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
  EXPECT_DOUBLE_EQ(h.mean(), 15.5);
  // Values below kSubBuckets land in their own bucket: percentiles exact.
  EXPECT_EQ(h.percentile(50), 15);  // nearest rank: 16th of 32
  EXPECT_EQ(h.percentile(100), 31);
}

TEST(Histogram, NearestRankPercentile) {
  HistogramData h;
  for (std::int64_t v : {10, 20, 30, 40}) h.record(v);
  EXPECT_EQ(h.percentile(25), 10);
  EXPECT_EQ(h.percentile(50), 20);
  EXPECT_EQ(h.percentile(75), 30);
  EXPECT_EQ(h.percentile(100), 40);
}

TEST(Histogram, QuantizationErrorBounded) {
  // Above the exact range values are bucketized; the reported percentile
  // is the bucket's lower bound, at most 1/32 (~3.1%) below the value.
  HistogramData h;
  const std::int64_t v = 1'000'000;
  h.record(v);
  const std::int64_t p50 = h.percentile(50);
  EXPECT_LE(p50, v);
  EXPECT_GE(p50, v - v / 32 - 1);
  // min/max stay exact and clamp the extreme percentiles.
  EXPECT_EQ(h.min(), v);
  EXPECT_EQ(h.max(), v);
  EXPECT_EQ(h.percentile(100), v);
}

TEST(Histogram, BucketIndexRoundTrips) {
  for (std::uint64_t v :
       {0ull, 1ull, 31ull, 32ull, 33ull, 1023ull, 65536ull, 1'000'000ull,
        (1ull << 40) + 12345ull}) {
    const std::size_t idx = HistogramData::bucket_index(v);
    const std::uint64_t lower = HistogramData::bucket_lower(idx);
    EXPECT_LE(lower, v);
    // The lower bound of the *next* bucket exceeds v.
    EXPECT_GT(HistogramData::bucket_lower(idx + 1), v);
  }
}

TEST(Histogram, MergeAndReset) {
  HistogramData a;
  HistogramData b;
  a.record(10);
  a.record(20);
  b.record(30);
  b.record(40, 2);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 40);
  EXPECT_DOUBLE_EQ(a.sum(), 140.0);
  EXPECT_EQ(a.percentile(100), 40);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Histogram, NegativeValuesClampToZeroBucket) {
  HistogramData h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), -5);  // exact min is preserved
  EXPECT_EQ(h.percentile(50), -5);  // clamped to observed min
}

TEST(Registry, SnapshotsFollowTheSimClock) {
  sim::Simulator sim;
  telemetry::Registry registry(true);
  telemetry::Counter c = registry.counter("events");
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(sim::Time(i * 100), [c]() mutable { c.inc(); });
  }
  registry.start_snapshots(sim, sim::Duration(250));
  sim.run_until(sim::Time(1000));
  registry.stop_snapshots();
  ASSERT_GE(registry.snapshots().size(), 3u);
  // Snapshot values are monotone and time-stamped in order.
  std::uint64_t prev = 0;
  std::int64_t prev_t = -1;
  for (const auto& snap : registry.snapshots()) {
    EXPECT_GT(snap.t_ns, prev_t);
    prev_t = snap.t_ns;
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "events");
    EXPECT_GE(snap.counters[0].second, prev);
    prev = snap.counters[0].second;
  }
  // The 250 ns snapshot saw the 100 ns and 200 ns increments.
  EXPECT_EQ(registry.snapshots().front().counters[0].second, 2u);
}

TEST(Registry, JsonExportIsWellFormed) {
  telemetry::Registry registry(true);
  registry.counter("c.one").inc(7);
  registry.gauge("g\"quoted\\name").set(-3);  // exercises escaping
  telemetry::Histogram h = registry.histogram("h.lat");
  h.record(5);
  h.record(500);
  registry.take_snapshot(sim::Time(42));
  std::ostringstream os;
  registry.write_json(os, sim::Time(1234));
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"c.one\""), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\\name"), std::string::npos);
  EXPECT_NE(json.find("\"snapshots\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_time_ns\": 1234"), std::string::npos);
}

TEST(Tracer, EventCapCountsDrops) {
  telemetry::Tracer tracer(true);
  tracer.set_max_events(2);
  tracer.complete(1, 1, "a", sim::Time(0), sim::Time(10));
  tracer.instant(1, 1, "b", sim::Time(5));
  tracer.instant(1, 1, "c", sim::Time(6));  // over the cap
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped_events(), 1u);
  // Metadata is exempt from the cap.
  tracer.set_thread_name(1, 1, "row");
  std::ostringstream os;
  tracer.write_json(os);
  EXPECT_NE(os.str().find("\"row\""), std::string::npos);
}

/// Two IPv4/UDP packets through a 1-PFE router with full telemetry:
/// the deterministic counter values and the golden trace content.
class TwoPacketRun : public ::testing::Test {
 protected:
  void Run() {
    trio::Router router(sim_, trio::Calibration{}, 1, 4, telem_);
    const std::uint32_t nh =
        router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
    router.forwarding().add_route(net::Ipv4Addr::from_string("198.51.100.1"),
                                  32, nh);
    router.attach_port_sink(1, [this](net::PacketPtr) { ++forwarded_; });
    std::vector<std::uint8_t> payload(100, 0x42);
    const auto frame = net::build_udp_frame(
        {0x02, 0, 0, 0, 0, 1}, {0x02, 0, 0, 0, 0, 2},
        net::Ipv4Addr::from_string("192.0.2.1"),
        net::Ipv4Addr::from_string("198.51.100.1"), 4000, 4001, payload);
    router.receive(net::Packet::make(frame), 0);
    router.receive(net::Packet::make(frame), 0);
    sim_.run();
  }

  sim::Simulator sim_;
  telemetry::Telemetry telem_{true, true};
  int forwarded_ = 0;
};

TEST_F(TwoPacketRun, CountersMatchTheDeterministicRun) {
  Run();
  EXPECT_EQ(forwarded_, 2);
  auto& m = telem_.metrics;
  EXPECT_EQ(m.counter_value("router.packets_received"), 2u);
  EXPECT_EQ(m.counter_value("router.packets_transmitted"), 2u);
  EXPECT_EQ(m.counter_value("pfe0.packets_in"), 2u);
  EXPECT_EQ(m.counter_value("pfe0.packets_dispatched"), 2u);
  EXPECT_EQ(m.counter_value("pfe0.dispatch_drops"), 0u);
  EXPECT_EQ(m.counter_value("pfe0.reorder.released"), 2u);
  EXPECT_EQ(m.counter_value("pfe0.threads_started"), 2u);
  // One FIB-walk read per packet through the SMS.
  EXPECT_EQ(m.counter_value("pfe0.sms.ops"), 2u);
  EXPECT_GT(m.counter_value("pfe0.instructions"), 0u);
  const HistogramData* delay = m.find_histogram("pfe0.sms.queue_delay_ns");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count(), 2u);
}

TEST_F(TwoPacketRun, TraceIsWellFormedChromeJsonWithExpectedSpans) {
  Run();
  std::ostringstream os;
  telem_.tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // Row metadata: the PFE process and its hardware-block rows.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"pfe0\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"reorder\""), std::string::npos);
  EXPECT_NE(json.find("\"crossbar\""), std::string::npos);
  EXPECT_NE(json.find("\"mqss\""), std::string::npos);
  EXPECT_NE(json.find("\"sms.bank00\""), std::string::npos);
  EXPECT_NE(json.find("\"ppe00.t00\""), std::string::npos);
  // Per-PPE-thread spans: the packet lifetime and the FIB-read stall.
  EXPECT_NE(json.find("\"name\": \"packet\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"stall:read\""), std::string::npos);
  // SMS bank service span + busy-cycles counter samples.
  EXPECT_NE(json.find("\"name\": \"read\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_cycles\""), std::string::npos);
  // Complete events carry ph X with microsecond timestamps.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
}

TEST(RouterTelemetry, UnobservedRouterStaysDisabledAndCorrect) {
  // The telemetry-less constructor must behave identically (owned,
  // disabled bundle; no metric cells allocated).
  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 4);
  EXPECT_FALSE(router.metrics().enabled());
  EXPECT_FALSE(router.tracer().enabled());
  EXPECT_EQ(router.metrics().metric_count(), 0u);
  const std::uint32_t nh =
      router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
  router.forwarding().add_route(net::Ipv4Addr::from_string("198.51.100.1"), 32,
                                nh);
  int forwarded = 0;
  router.attach_port_sink(1, [&](net::PacketPtr) { ++forwarded; });
  std::vector<std::uint8_t> payload(64, 1);
  const auto frame = net::build_udp_frame(
      {0x02, 0, 0, 0, 0, 1}, {0x02, 0, 0, 0, 0, 2},
      net::Ipv4Addr::from_string("192.0.2.1"),
      net::Ipv4Addr::from_string("198.51.100.1"), 4000, 4001, payload);
  router.receive(net::Packet::make(frame), 0);
  sim.run();
  EXPECT_EQ(forwarded, 1);
  EXPECT_EQ(router.metrics().metric_count(), 0u);
}

}  // namespace
