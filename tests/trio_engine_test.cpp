#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trio/forwarding.hpp"
#include "trio/reorder.hpp"
#include "trio/router.hpp"

namespace {

// ---------------------------------------------------------------------------
// ReorderEngine

TEST(Reorder, SameFlowReleasesInArrivalOrder) {
  std::vector<std::uint32_t> released;
  trio::ReorderEngine re([&](trio::ReorderEngine::Output out) {
    released.push_back(out.nexthop_id);
  });
  const auto t1 = re.open(5);
  const auto t2 = re.open(5);
  re.attach(t2, {nullptr, 2});
  re.close(t2);  // finished first, must wait for t1
  EXPECT_TRUE(released.empty());
  re.attach(t1, {nullptr, 1});
  re.close(t1);
  EXPECT_EQ(released, (std::vector<std::uint32_t>{1, 2}));
}

TEST(Reorder, DifferentFlowsIndependent) {
  std::vector<std::uint32_t> released;
  trio::ReorderEngine re([&](trio::ReorderEngine::Output out) {
    released.push_back(out.nexthop_id);
  });
  const auto a = re.open(1);
  const auto b = re.open(2);
  re.attach(b, {nullptr, 20});
  re.close(b);  // flow 2 not blocked by flow 1
  EXPECT_EQ(released, (std::vector<std::uint32_t>{20}));
  re.attach(a, {nullptr, 10});
  re.close(a);
  EXPECT_EQ(released, (std::vector<std::uint32_t>{20, 10}));
}

TEST(Reorder, ConsumedPacketUnblocksSuccessors) {
  std::vector<std::uint32_t> released;
  trio::ReorderEngine re([&](trio::ReorderEngine::Output out) {
    released.push_back(out.nexthop_id);
  });
  const auto t1 = re.open(9);
  const auto t2 = re.open(9);
  re.attach(t2, {nullptr, 2});
  re.close(t2);
  re.close(t1);  // consumed: zero outputs
  EXPECT_EQ(released, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(re.pending(), 0u);
}

TEST(Reorder, MultipleOutputsPerTicket) {
  std::vector<std::uint32_t> released;
  trio::ReorderEngine re([&](trio::ReorderEngine::Output out) {
    released.push_back(out.nexthop_id);
  });
  const auto t = re.open(1);
  re.attach(t, {nullptr, 1});
  re.attach(t, {nullptr, 2});
  re.close(t);
  EXPECT_EQ(released, (std::vector<std::uint32_t>{1, 2}));
}

TEST(Reorder, DoubleCloseThrows) {
  trio::ReorderEngine re([](trio::ReorderEngine::Output) {});
  const auto t = re.open(1);
  re.close(t);
  EXPECT_THROW(re.close(t), std::logic_error);
}

// ---------------------------------------------------------------------------
// ForwardingTable

TEST(Forwarding, LongestPrefixMatchWins) {
  trio::ForwardingTable fwd;
  const auto nh_default = fwd.add_nexthop(trio::NexthopDiscard{});
  const auto nh_slash8 =
      fwd.add_nexthop(trio::NexthopUnicast{1, {}});
  const auto nh_slash24 =
      fwd.add_nexthop(trio::NexthopUnicast{2, {}});
  fwd.add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh_default);
  fwd.add_route(net::Ipv4Addr::from_string("10.0.0.0"), 8, nh_slash8);
  fwd.add_route(net::Ipv4Addr::from_string("10.1.2.0"), 24, nh_slash24);

  EXPECT_EQ(fwd.lookup(net::Ipv4Addr::from_string("10.1.2.3")), nh_slash24);
  EXPECT_EQ(fwd.lookup(net::Ipv4Addr::from_string("10.9.9.9")), nh_slash8);
  EXPECT_EQ(fwd.lookup(net::Ipv4Addr::from_string("192.168.0.1")),
            nh_default);
}

TEST(Forwarding, LookupWithoutRoutesIsEmpty) {
  trio::ForwardingTable fwd;
  EXPECT_FALSE(fwd.lookup(net::Ipv4Addr::from_string("1.2.3.4")).has_value());
}

TEST(Forwarding, MulticastGroupAccumulatesMembers) {
  trio::ForwardingTable fwd;
  const auto m1 = fwd.add_nexthop(trio::NexthopUnicast{1, {}});
  const auto m2 = fwd.add_nexthop(trio::NexthopUnicast{2, {}});
  const auto group = net::Ipv4Addr::from_string("239.0.0.7");
  const auto g1 = fwd.join_group(group, m1);
  const auto g2 = fwd.join_group(group, m2);
  EXPECT_EQ(g1, g2);
  const auto& mc = std::get<trio::NexthopMulticast>(fwd.nexthop(g1));
  EXPECT_EQ(mc.members, (std::vector<std::uint32_t>{m1, m2}));
  EXPECT_EQ(fwd.lookup(group), g1);
}

TEST(Forwarding, BadRouteArgumentsThrow) {
  trio::ForwardingTable fwd;
  const auto nh = fwd.add_nexthop(trio::NexthopDiscard{});
  EXPECT_THROW(fwd.add_route(net::Ipv4Addr(), 33, nh),
               std::invalid_argument);
  EXPECT_THROW(fwd.add_route(net::Ipv4Addr(), 8, nh + 1),
               std::invalid_argument);
  EXPECT_THROW(fwd.nexthop(99), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Router end-to-end IP forwarding (default program on PPE threads)

class RouterForwardingTest : public ::testing::Test {
 protected:
  RouterForwardingTest()
      : router(sim, trio::Calibration{}, /*pfes=*/2, /*ports=*/4) {}

  net::Buffer make_frame(const std::string& dst, std::size_t payload = 64) {
    std::vector<std::uint8_t> body(payload, 0x5a);
    return net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                net::Ipv4Addr::from_string("10.0.0.1"),
                                net::Ipv4Addr::from_string(dst), 1000, 2000,
                                body);
  }

  sim::Simulator sim;
  trio::Router router;
};

TEST_F(RouterForwardingTest, ForwardsByLpmAndDecrementsTtl) {
  auto& fwd = router.forwarding();
  const auto nh = fwd.add_nexthop(
      trio::NexthopUnicast{2, {0xde, 0xad, 0, 0, 0, 1}});
  fwd.add_route(net::Ipv4Addr::from_string("10.0.1.0"), 24, nh);

  std::vector<net::PacketPtr> out;
  router.attach_port_sink(2, [&](net::PacketPtr p) { out.push_back(std::move(p)); });

  router.receive(net::Packet::make(make_frame("10.0.1.9")), 0);
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  const auto ip = net::Ipv4Header::parse(out[0]->frame(),
                                         net::UdpFrameLayout::kIpOff);
  EXPECT_EQ(ip.ttl, 63);  // decremented
  const auto eth = net::EthernetHeader::parse(out[0]->frame(), 0);
  EXPECT_EQ(eth.dst, (net::MacAddr{0xde, 0xad, 0, 0, 0, 1}));
}

TEST_F(RouterForwardingTest, CrossPfeForwardingTransitsFabric) {
  auto& fwd = router.forwarding();
  // Port 5 lives on PFE 1; ingress arrives on PFE 0.
  const auto nh = fwd.add_nexthop(trio::NexthopUnicast{5, {}});
  fwd.add_route(net::Ipv4Addr::from_string("10.0.2.0"), 24, nh);

  std::vector<net::PacketPtr> out;
  router.attach_port_sink(5, [&](net::PacketPtr p) { out.push_back(std::move(p)); });
  router.receive(net::Packet::make(make_frame("10.0.2.1")), 0);
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(router.fabric().packets(), 1u);
}

TEST_F(RouterForwardingTest, NoRouteIsDropped) {
  router.receive(net::Packet::make(make_frame("172.16.0.1")), 0);
  sim.run();
  EXPECT_EQ(router.no_route_drops(), 1u);
  EXPECT_EQ(router.packets_transmitted(), 0u);
}

TEST_F(RouterForwardingTest, TtlExpiryIsDropped) {
  auto& fwd = router.forwarding();
  const auto nh = fwd.add_nexthop(trio::NexthopUnicast{1, {}});
  fwd.add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh);

  auto frame = make_frame("10.0.0.2");
  net::Ipv4Header ip = net::Ipv4Header::parse(frame, net::UdpFrameLayout::kIpOff);
  ip.ttl = 1;
  ip.write(frame, net::UdpFrameLayout::kIpOff);

  std::vector<net::PacketPtr> out;
  router.attach_port_sink(1, [&](net::PacketPtr p) { out.push_back(std::move(p)); });
  router.receive(net::Packet::make(std::move(frame)), 0);
  sim.run();
  EXPECT_TRUE(out.empty());
}

TEST_F(RouterForwardingTest, MulticastReplicatesToAllMembers) {
  auto& fwd = router.forwarding();
  const auto group = net::Ipv4Addr::from_string("239.1.1.1");
  for (int port : {1, 2, 3}) {
    fwd.join_group(group, fwd.add_nexthop(trio::NexthopUnicast{port, {}}));
  }
  int delivered = 0;
  for (int port : {1, 2, 3}) {
    router.attach_port_sink(port, [&](net::PacketPtr) { ++delivered; });
  }
  router.receive(net::Packet::make(make_frame("239.1.1.1")), 0);
  sim.run();
  EXPECT_EQ(delivered, 3);
}

TEST_F(RouterForwardingTest, ManyPacketsAllForwardedUnderLoad) {
  auto& fwd = router.forwarding();
  const auto nh = fwd.add_nexthop(trio::NexthopUnicast{3, {}});
  fwd.add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh);
  int delivered = 0;
  router.attach_port_sink(3, [&](net::PacketPtr) { ++delivered; });
  for (int i = 0; i < 2000; ++i) {
    router.receive(net::Packet::make(make_frame("10.0.0.9", 200)), 0);
  }
  sim.run();
  EXPECT_EQ(delivered, 2000);
  EXPECT_GT(router.pfe(0).instructions_issued(), 0u);
}

TEST_F(RouterForwardingTest, SameFlowStaysInOrder) {
  auto& fwd = router.forwarding();
  const auto nh = fwd.add_nexthop(trio::NexthopUnicast{3, {}});
  fwd.add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh);
  std::vector<std::uint64_t> order;
  router.attach_port_sink(3, [&](net::PacketPtr p) {
    order.push_back(p->id());
  });
  for (std::uint64_t i = 0; i < 500; ++i) {
    auto pkt = net::Packet::make(make_frame("10.0.0.9"));
    pkt->set_id(i);
    router.receive(std::move(pkt), 0);
  }
  sim.run();
  ASSERT_EQ(order.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------------
// Timer threads

class CountingProgram : public trio::PpeProgram {
 public:
  explicit CountingProgram(int* counter) : counter_(counter) {}
  trio::Action step(trio::ThreadContext&) override {
    ++*counter_;
    return trio::ActExit{4};
  }

 private:
  int* counter_;
};

TEST(TimerWheel, PhaseShiftedPeriodicFiring) {
  sim::Simulator sim;
  trio::Calibration cal;
  trio::Router router(sim, cal, 1, 2);
  int count = 0;
  router.pfe(0).timers().start(
      /*count=*/10, sim::Duration::millis(1),
      [&](std::uint32_t) { return std::make_unique<CountingProgram>(&count); });
  sim.run_until(sim::Time(sim::Duration::millis(10).ns()));
  // 10 timers x ~10 periods in 10 ms: about 100 firings.
  EXPECT_GE(count, 90);
  EXPECT_LE(count, 110);
  EXPECT_EQ(router.pfe(0).timers().skips(), 0u);
  router.pfe(0).timers().stop();
  const int before = count;
  sim.run_until(sim::Time(sim::Duration::millis(20).ns()));
  // No NEW firings after stop; threads already spawned may still run.
  EXPECT_LE(count, before + 10);
}

TEST(TimerWheel, RejectsBadArguments) {
  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 2);
  EXPECT_THROW(router.pfe(0).timers().start(0, sim::Duration::millis(1),
                                            [](std::uint32_t) { return nullptr; }),
               std::invalid_argument);
  EXPECT_THROW(router.pfe(0).timers().start(1, sim::Duration::nanos(10),
                                            [](std::uint32_t) { return nullptr; }),
               std::invalid_argument);
}

}  // namespace
