// Unit tests for the Trio-ML end-host worker: API contracts, window
// bookkeeping, quantised float allreduce, and result filtering.
#include <gtest/gtest.h>

#include "trioml/testbed.hpp"

namespace {

using namespace trioml;

TEST(Host, RejectsBadConfigs) {
  sim::Simulator sim;
  net::LinkEndpoint tx(sim, 100.0, sim::Duration::zero());
  TrioMlWorker::Config bad;
  bad.grads_per_packet = 0;
  EXPECT_THROW(TrioMlWorker(sim, bad, tx), std::invalid_argument);
  bad.grads_per_packet = 2000;  // > 1024
  EXPECT_THROW(TrioMlWorker(sim, bad, tx), std::invalid_argument);
  bad.grads_per_packet = 64;
  bad.window = 0;
  EXPECT_THROW(TrioMlWorker(sim, bad, tx), std::invalid_argument);
}

TEST(Host, RejectsConcurrentAllreduce) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  Testbed tb(cfg);
  tb.worker(0).start_allreduce({1, 2, 3}, 1, [](AllreduceResult) {});
  EXPECT_TRUE(tb.worker(0).busy());
  EXPECT_THROW(
      tb.worker(0).start_allreduce({4, 5, 6}, 2, [](AllreduceResult) {}),
      std::logic_error);
}

TEST(Host, WindowBoundsOutstandingPackets) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  cfg.window = 3;
  Testbed tb(cfg);
  // Only worker 0 sends: nothing completes, so exactly `window` packets
  // leave the NIC.
  std::vector<std::uint32_t> g(64 * 10, 1);
  tb.worker(0).start_allreduce(std::move(g), 1, [](AllreduceResult) {});
  tb.simulator().run_until(sim::Time(sim::Duration::millis(5).ns()));
  EXPECT_EQ(tb.worker(0).packets_sent(), 3u);
}

TEST(Host, FloatAllreduceAveragesAcrossWorkers) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);
  int done = 0;
  std::vector<AllreduceResult> results(2);
  const std::vector<float> a = {0.5f, -1.25f, 3.0f, 0.0f};
  const std::vector<float> b = {1.5f, 0.25f, -1.0f, 2.0f};
  tb.worker(0).start_allreduce_float(a, 1, [&](AllreduceResult r) {
    results[0] = std::move(r);
    ++done;
  });
  tb.worker(1).start_allreduce_float(b, 1, [&](AllreduceResult r) {
    results[1] = std::move(r);
    ++done;
  });
  tb.simulator().run();
  ASSERT_EQ(done, 2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float expected = (a[i] + b[i]) / 2.0f;
    EXPECT_NEAR(results[0].grads[i], expected, 1e-3f);
    EXPECT_NEAR(results[1].grads[i], expected, 1e-3f);
  }
}

TEST(Host, IgnoresResultsFromOtherGenerationsAndJobs) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 8;
  Testbed tb(cfg);
  int done = 0;
  tb.worker(0).start_allreduce({1, 2, 3, 4, 5, 6, 7, 8}, /*gen=*/7,
                               [&](AllreduceResult) { ++done; });
  // Forge results with the wrong generation and the wrong job directly
  // into the worker: both must be ignored.
  TrioMlHeader hdr;
  hdr.job_id = cfg.job_id;
  hdr.block_id = 0;
  hdr.gen_id = 3;  // wrong generation
  hdr.grad_cnt = 8;
  std::vector<std::uint32_t> grads(8, 999);
  auto frame = build_aggregation_frame(
      {9, 9, 9, 9, 9, 9}, {8, 8, 8, 8, 8, 8},
      net::Ipv4Addr::from_octets(10, 0, 0, 254),
      net::Ipv4Addr::from_octets(239, 0, 0, 1), kTrioMlUdpPort, hdr, grads);
  tb.worker(0).receive(net::Packet::make(frame), 0);
  hdr.gen_id = 7;
  hdr.job_id = 42;  // wrong job
  auto frame2 = build_aggregation_frame(
      {9, 9, 9, 9, 9, 9}, {8, 8, 8, 8, 8, 8},
      net::Ipv4Addr::from_octets(10, 0, 0, 254),
      net::Ipv4Addr::from_octets(239, 0, 0, 1), kTrioMlUdpPort, hdr, grads);
  tb.worker(0).receive(net::Packet::make(frame2), 0);
  EXPECT_EQ(done, 0);
  EXPECT_EQ(tb.worker(0).results_received(), 0u);
}

TEST(Host, DuplicateResultIgnored) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 8;
  Testbed tb(cfg);
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    tb.worker(w).start_allreduce({1, 1, 1, 1, 1, 1, 1, 1}, 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 2);
  const auto received = tb.worker(0).results_received();
  // Replay the same result: already-completed block, not counted again.
  TrioMlHeader hdr;
  hdr.job_id = cfg.job_id;
  hdr.block_id = 0;
  hdr.gen_id = 1;
  hdr.grad_cnt = 8;
  hdr.src_cnt = 2;
  std::vector<std::uint32_t> grads(8, 2);
  auto frame = build_aggregation_frame(
      {9, 9, 9, 9, 9, 9}, {8, 8, 8, 8, 8, 8},
      net::Ipv4Addr::from_octets(10, 0, 0, 254),
      net::Ipv4Addr::from_octets(239, 0, 0, 1), kTrioMlUdpPort, hdr, grads);
  tb.worker(0).receive(net::Packet::make(frame), 0);
  EXPECT_EQ(tb.worker(0).results_received(), received);
}

TEST(Host, BlockLatencyMeasuredPerBlock) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  cfg.window = 2;
  Testbed tb(cfg);
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> g(64 * 5, 1);
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  ASSERT_EQ(done, 2);
  EXPECT_EQ(tb.worker(0).block_latency_us().count(), 5u);
  EXPECT_GT(tb.worker(0).block_latency_us().mean(), 0.0);
}

}  // namespace
