// Resource-lifecycle invariants: slab pools drain back to full, dispatch
// overflow degrades gracefully, and SwitchML-256 outperforms SwitchML-64
// (the §6.1 claim justifying the paper's choice of baseline variant).
#include <gtest/gtest.h>

#include "switchml/switchml.hpp"
#include "trioml/testbed.hpp"

namespace {

using namespace trioml;

TEST(SlabPool, ReturnsToFullAfterCleanWorkload) {
  TestbedConfig cfg;
  cfg.num_workers = 3;
  cfg.grads_per_packet = 256;
  cfg.window = 8;
  cfg.slab_pool = 64;
  Testbed tb(cfg);
  int done = 0;
  for (int w = 0; w < 3; ++w) {
    std::vector<std::uint32_t> g(256 * 50, 1);
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(tb.app(0).free_slab_count(), tb.app(0).slab_pool_size())
      << "every slab must be recycled after the blocks complete";
}

TEST(SlabPool, ReturnsToFullAfterAgedWorkload) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  cfg.window = 4;
  cfg.slab_pool = 32;
  Testbed tb(cfg);
  tb.start_straggler_detection(10, sim::Duration::millis(2));
  int done = 0;
  std::vector<std::uint32_t> g(64 * 12, 1);
  tb.worker(0).start_allreduce(std::move(g), 1,
                               [&](AllreduceResult) { ++done; });
  tb.simulator().run_until(sim::Time(sim::Duration::millis(100).ns()));
  EXPECT_EQ(done, 1);
  EXPECT_EQ(tb.app(0).free_slab_count(), tb.app(0).slab_pool_size())
      << "aged blocks must release their slabs too";
}

TEST(SlabPool, FreedBuffersAreZeroedForReuse) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  cfg.window = 1;
  cfg.slab_pool = 1;  // every block reuses the single slab
  Testbed tb(cfg);
  // With one slab, simultaneous creators can race it away from each
  // other; retransmission is the recovery path (as for any loss).
  for (int w = 0; w < 2; ++w) {
    tb.worker(w).enable_retransmit(sim::Duration::millis(1));
  }
  int done = 0;
  std::vector<AllreduceResult> results(2);
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> g(64 * 6, 3);
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&, w](AllreduceResult r) {
                                   results[static_cast<std::size_t>(w)] = std::move(r);
                                   ++done;
                                 });
  }
  tb.simulator().run_until(sim::Time(sim::Duration::seconds(1).ns()));
  ASSERT_EQ(done, 2);
  // If stale sums leaked between blocks, later gradients would exceed 6.
  for (float v : results[0].grads) {
    EXPECT_NEAR(v, dequantize(6) / 2.0f, 1e-6f);
  }
}

TEST(DispatchOverflow, DropsCountedAndRecoveredByRetransmit) {
  trio::Calibration cal;
  cal.dispatch_queue_limit = 8;  // tiny ingress buffer
  cal.ppes_per_pfe = 1;
  cal.threads_per_ppe = 2;
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 256;
  cfg.window = 64;  // way beyond 2 threads + 8 queue slots
  cfg.cal = cal;
  Testbed tb(cfg);
  for (int w = 0; w < 2; ++w) {
    tb.worker(w).enable_retransmit(sim::Duration::millis(1));
  }
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> g(256 * 64, 1);
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run_until(sim::Time(sim::Duration::seconds(2).ns()));
  EXPECT_EQ(done, 2);
  EXPECT_GT(tb.router().pfe(0).packets_dropped_dispatch(), 0u);
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 64u);
}

// ---------------------------------------------------------------------------
// SwitchML-256 vs SwitchML-64 (paper §6.1: "SwitchML-256 performs better
// than SwitchML-64; therefore, in our evaluations, we use SwitchML-256").

double switchml_allreduce_us(int grads_per_packet) {
  sim::Simulator sim;
  pisa::SwitchConfig scfg;
  pisa::Switch sw(sim, scfg);
  switchml::SwitchMlConfig cfg;
  cfg.num_workers = 4;
  cfg.pool_size = 64;
  cfg.grads_per_packet = grads_per_packet;
  std::vector<int> ports{0, 1, 2, 3};
  switchml::SwitchMlAggregator agg(sw, cfg, ports);

  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<switchml::SwitchMlWorker>> workers;
  int done = 0;
  sim::Time finish;
  for (int i = 0; i < 4; ++i) {
    links.push_back(
        std::make_unique<net::Link>(sim, 100.0, sim::Duration::micros(1)));
    switchml::SwitchMlWorker::Config wc;
    wc.worker_id = static_cast<std::uint8_t>(i);
    wc.num_workers = 4;
    wc.pool_size = 64;
    wc.grads_per_packet = grads_per_packet;
    wc.ip = net::Ipv4Addr::from_octets(10, 1, 0, static_cast<std::uint8_t>(i + 1));
    wc.switch_ip = net::Ipv4Addr::from_octets(10, 1, 0, 254);
    workers.push_back(std::make_unique<switchml::SwitchMlWorker>(
        sim, wc, links.back()->a_to_b()));
    links.back()->attach(*workers.back(), 0, sw, i);
    sw.attach_port(i, links.back()->b_to_a());
  }
  const std::size_t total = 256 * 64;  // same gradient volume both ways
  for (auto& w : workers) {
    std::vector<std::uint32_t> g(total, 1);
    w->start_allreduce(std::move(g), 1, [&](std::vector<std::uint32_t>) {
      ++done;
      finish = sim.now();
    });
  }
  sim.run();
  EXPECT_EQ(done, 4);
  return finish.us();
}

TEST(SwitchMlVariants, TwoFiftySixBeatsSixtyFour) {
  const double us_64 = switchml_allreduce_us(64);
  const double us_256 = switchml_allreduce_us(256);
  EXPECT_LT(us_256, us_64)
      << "4x fewer packets for the same gradients must finish sooner";
}

}  // namespace
