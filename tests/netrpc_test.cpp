// NetRPC subsystem acceptance (docs/netrpc.md): wire format round-trips,
// the jobs-DSL netrpc kind, the end-to-end in-network path on a Cluster
// (fan-out merge, hot-key cache hit/miss/invalidate), degraded completion
// under a crashed replica, cache-drop faults, co-tenancy beside a Trio-ML
// allreduce job with bit-identity, deterministic golden digests, and the
// structural limits of the PISA baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/tenant.hpp"
#include "netrpc/app.hpp"
#include "netrpc/baseline.hpp"
#include "netrpc/host.hpp"
#include "netrpc/layout.hpp"
#include "netrpc/wire_format.hpp"
#include "pisa/switch.hpp"

namespace {

using cluster::Cluster;
using cluster::ClusterSpec;

sim::Time at_us(std::int64_t v) {
  return sim::Time(sim::Duration::micros(v).ns());
}

/// 2 racks x 4 hosts: rack 0 carries 1 netrpc client (host 0) and up to 3
/// replicas (hosts 1..3) beside the cluster's built-in allreduce workers.
ClusterSpec netrpc_spec() {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 128;
  spec.slab_pool = 1024;
  return spec;
}

jobs::TenantSpec netrpc_tenant(std::uint8_t id) {
  jobs::TenantSpec t;
  t.id = id;
  t.kind = jobs::TenantKind::kNetRpc;
  t.rpc_policy = netrpc::MergePolicy::kSum;
  t.rpc_value_words = 8;
  t.rpc_servers = 3;
  t.rpc_clients = 1;
  t.rpc_window = 8;
  t.rpc_calls = 16;
  t.rpc_gets = 32;
  t.rpc_puts = 4;
  t.rpc_hot_keys = 4;
  return t;
}

jobs::TenantSpec allreduce_tenant(std::uint8_t id) {
  jobs::TenantSpec t;
  t.id = id;
  t.kind = jobs::TenantKind::kAllreduce;
  t.grads = 128 * 16;
  t.window = 64;
  t.block_cnt_max = 256;
  return t;
}

// --- Wire format ------------------------------------------------------------

TEST(NetRpcWire, HeaderRoundTripsAndKeysPartitionByTenant) {
  netrpc::NetRpcHeader hdr;
  hdr.op = netrpc::Op::kRpcResp;
  hdr.tenant = 9;
  hdr.client_id = 3;
  hdr.server_id = 2;
  hdr.policy = netrpc::MergePolicy::kMajority;
  hdr.flags = netrpc::kFlagDegraded;
  hdr.value_cnt = 8;
  hdr.server_cnt = 5;
  hdr.rpc_id = 0xdeadbeef;
  hdr.key = netrpc::make_key(9, 0x1234'5678'9abcull);

  const std::vector<std::uint32_t> vals{1, 2, 3, 4, 5, 6, 7, 8};
  net::Buffer frame = netrpc::build_netrpc_frame(
      net::MacAddr{1}, net::MacAddr{2}, net::Ipv4Addr::from_octets(10, 0, 0, 1),
      net::Ipv4Addr::from_octets(10, 0, 0, 2), 12100,
      netrpc::kResponseUdpPort, hdr, vals, 8);
  ASSERT_TRUE(netrpc::is_netrpc_frame(frame));

  const auto parsed = netrpc::NetRpcHeader::parse(frame, netrpc::kNetRpcHdrOff);
  EXPECT_EQ(parsed.op, hdr.op);
  EXPECT_EQ(parsed.tenant, 9);
  EXPECT_EQ(parsed.client_id, 3);
  EXPECT_EQ(parsed.server_id, 2);
  EXPECT_EQ(parsed.policy, netrpc::MergePolicy::kMajority);
  EXPECT_EQ(parsed.flags, netrpc::kFlagDegraded);
  EXPECT_EQ(parsed.rpc_id, 0xdeadbeefu);
  EXPECT_EQ(parsed.key, hdr.key);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(netrpc::read_value(frame, i), vals[i]);
  }

  // The tenant id occupies bits 48..55 — the hash-partition slice byte —
  // and the user key survives the round trip.
  EXPECT_EQ(netrpc::tenant_of_key(hdr.key), 9);
  EXPECT_EQ(netrpc::user_key_of(hdr.key), 0x1234'5678'9abcull);
  EXPECT_EQ(hdr.key >> 48, 9u);
}

TEST(NetRpcWire, ServiceWorstCaseCoversAllTables) {
  netrpc::ServiceConfig cfg;
  cfg.client_cnt = 2;
  cfg.server_cnt = 3;
  const std::uint64_t bytes = netrpc::service_worst_case_bytes(cfg);
  // 2 clients * 16 slots * 256 B pending + 64 * 128 B cache + nexthops
  // + counters.
  EXPECT_EQ(bytes, 2 * 16 * 256 + 64 * 128 + (2 + 3) * 8 +
                       netrpc::kCounterCount * netrpc::kCounterBytes);
}

// --- Jobs DSL ---------------------------------------------------------------

TEST(NetRpcDsl, ParsesNetRpcTenant) {
  const auto spec = jobs::JobsSpec::parse(
      "tenant 4 netrpc policy=majority values=6 servers=5 clients=2 "
      "rpcwindow=4 calls=10 gets=20 puts=3 hotkeys=8\n");
  ASSERT_EQ(spec.size(), 1u);
  const auto& t = spec.tenants[0];
  EXPECT_EQ(t.kind, jobs::TenantKind::kNetRpc);
  EXPECT_EQ(t.rpc_policy, netrpc::MergePolicy::kMajority);
  EXPECT_EQ(t.rpc_value_words, 6);
  EXPECT_EQ(t.rpc_servers, 5);
  EXPECT_EQ(t.rpc_clients, 2);
  EXPECT_EQ(t.rpc_window, 4u);
  EXPECT_EQ(t.rpc_calls, 10u);
  EXPECT_EQ(t.rpc_gets, 20u);
  EXPECT_EQ(t.rpc_puts, 3u);
  EXPECT_EQ(t.rpc_hot_keys, 8u);
}

// --- End-to-end on the Cluster ----------------------------------------------

TEST(NetRpc, SoloRunMergesInNetworkAndHitsTheCache) {
  Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(netrpc_tenant(4)).admitted);

  const auto run = mgr.run(/*gen_id=*/1, at_us(50'000));
  const auto* tr = run.tenant(4);
  ASSERT_NE(tr, nullptr);
  EXPECT_EQ(tr->finished, 1);
  EXPECT_EQ(tr->netrpc.puts, 4u);
  EXPECT_EQ(tr->netrpc.gets, 32u);
  EXPECT_EQ(tr->netrpc.calls, 16u);
  EXPECT_EQ(tr->netrpc.degraded, 0u);

  // Hot keys repeat, so after each key's first (miss+fill) GET the PFE
  // answers from its SMS cache.
  EXPECT_GT(tr->netrpc.cached_gets, 0u);
  EXPECT_LT(tr->netrpc.cached_gets, tr->netrpc.gets);

  netrpc::NetRpcApp* app = mgr.netrpc_app();
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->counter_packets(4, netrpc::kCtrCacheHit),
            tr->netrpc.cached_gets);
  EXPECT_GT(app->counter_packets(4, netrpc::kCtrCacheFill), 0u);
  // Every fan-out response was consumed by an in-flight merge: per call,
  // N-1 responses are absorbed (kCtrMerged) and the N-th completes and
  // emits the single MergedResp (kCtrCompleted). The client never saw
  // 3x16 raw responses.
  EXPECT_EQ(app->counter_packets(4, netrpc::kCtrCompleted), 16u);
  EXPECT_EQ(app->counter_packets(4, netrpc::kCtrMerged), 2u * 16u);
  const auto* client = mgr.tenant_rpc_client(4, 0);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->host_merged_calls(), 0u);

  // The in-network sum equals the host-side sum of the replicas' work:
  // spot-check via the digest being non-trivial and latencies recorded.
  EXPECT_NE(tr->netrpc.value_digest, 14695981039346656037ull);
  EXPECT_GT(tr->netrpc.call_latency_us.count(), 0u);
  EXPECT_GT(tr->netrpc.get_hit_latency_us.count(), 0u);
  // Cache hits turn around at the PFE — well under the full server RTT.
  EXPECT_LT(tr->netrpc.get_hit_latency_us.mean(),
            tr->netrpc.get_miss_latency_us.mean());
}

TEST(NetRpc, PutInvalidatesTheCacheInTransit) {
  Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  jobs::TenantSpec spec = netrpc_tenant(4);
  ASSERT_TRUE(mgr.admit(spec).admitted);
  netrpc::RpcClient* client = mgr.tenant_rpc_client(4, 0);
  ASSERT_NE(client, nullptr);
  auto& sim = cl.simulator();

  std::vector<netrpc::GetResult> gets;
  auto get = [&](std::uint64_t key) {
    client->get(key, [&](netrpc::GetResult r) { gets.push_back(r); });
    sim.run_until(sim.now() + sim::Duration::micros(200));
  };

  get(1);  // miss, fills the cache
  get(1);  // hit
  ASSERT_EQ(gets.size(), 2u);
  EXPECT_FALSE(gets[0].cached);
  EXPECT_TRUE(gets[1].cached);
  EXPECT_EQ(gets[0].values, gets[1].values);

  bool put_done = false;
  const std::vector<std::uint32_t> fresh{42, 43, 44, 45, 46, 47, 48, 49};
  client->put(1, fresh, [&](netrpc::PutResult) { put_done = true; });
  sim.run_until(sim.now() + sim::Duration::micros(200));
  ASSERT_TRUE(put_done);
  EXPECT_EQ(mgr.netrpc_app()->counter_packets(4, netrpc::kCtrInvalidate), 1u);

  get(1);  // the PUT invalidated the entry: miss again, new values
  get(1);  // and the refill serves them from the cache
  ASSERT_EQ(gets.size(), 4u);
  EXPECT_FALSE(gets[2].cached);
  EXPECT_TRUE(gets[3].cached);
  EXPECT_EQ(gets[2].values, fresh);
  EXPECT_EQ(gets[3].values, fresh);
}

TEST(NetRpc, CrashedReplicaCompletesDegradedViaAging) {
  Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  mgr.set_netrpc_aging(sim::Duration::micros(100));
  jobs::TenantSpec spec = netrpc_tenant(4);
  spec.rpc_gets = 0;  // a GET homed on the dead replica would stall
  spec.rpc_puts = 0;
  ASSERT_TRUE(mgr.admit(spec).admitted);

  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  mgr.bind_fault_injector(injector);
  // Replica 2 sits on host 3 (servers take the last hosts of rack 0).
  injector.arm(faults::FaultSchedule::parse("at 1us crash worker:3 tenant=4"));

  const auto run = mgr.run(1, at_us(50'000));
  const auto* tr = run.tenant(4);
  ASSERT_NE(tr, nullptr);
  EXPECT_TRUE(mgr.tenant_rpc_server(4, 3)->crashed());
  // Every call still completes — partially, via the PFE's aging scan —
  // instead of hanging on the dead replica.
  EXPECT_EQ(tr->finished, 1);
  EXPECT_EQ(tr->netrpc.calls, 16u);
  EXPECT_EQ(tr->netrpc.degraded, 16u);
  EXPECT_GT(mgr.netrpc_app()->counter_packets(4, netrpc::kCtrDegraded), 0u);
  EXPECT_EQ(mgr.netrpc_app()->stats().degraded_emitted, 16u);

  bool logged = false;
  for (const auto& e : injector.log()) {
    if (e.what.find("crash worker:3 tenant=4") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);
}

// The expected in-network sum merge for one fan-out call: every replica
// contributes RpcServer::compute() = arg + i + rpc_id % 97 + server_id * 13.
std::vector<std::uint32_t> expected_sum(const std::vector<std::uint32_t>& args,
                                        std::uint32_t rpc_id,
                                        std::uint8_t servers) {
  std::vector<std::uint32_t> out(args.size());
  std::uint32_t id_term = 0;
  for (std::uint8_t s = 0; s < servers; ++s) id_term += s * 13u;
  for (std::size_t i = 0; i < args.size(); ++i) {
    out[i] = servers * (args[i] + std::uint32_t(i) + rpc_id % 97) + id_term;
  }
  return out;
}

TEST(NetRpc, StragglerCannotPolluteAReusedPendingSlot) {
  // The REVIEW.md high-severity scenario: a stalled replica's late
  // RPC_RESP arrives *after* the aging scan completed its call degraded
  // and reset the pending slot. The late response re-claims the empty
  // slot; a later call that maps to the same slot (ids 16 apart) must
  // not fold that stale contribution in — the datapath's FetchSwap64
  // ownership test reclaims the residue instead.
  Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  mgr.set_netrpc_aging(sim::Duration::micros(100));
  jobs::TenantSpec spec = netrpc_tenant(4);
  spec.rpc_window = 16;
  ASSERT_TRUE(mgr.admit(spec).admitted);
  netrpc::RpcClient* client = mgr.tenant_rpc_client(4, 0);
  ASSERT_NE(client, nullptr);
  auto& sim = cl.simulator();
  const std::vector<std::uint32_t> args{5, 6, 7, 8, 9, 10, 11, 12};

  // Replica 2 (host 3) straggles past the aging patience: call #1
  // completes degraded at ~2 aging periods with 2 contributors.
  mgr.tenant_rpc_server(4, 3)->stall_for(sim::Duration::millis(1));
  std::vector<netrpc::CallResult> results;
  client->call(args, [&](netrpc::CallResult r) { results.push_back(r); });
  sim.run_until(at_us(950));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].degraded);
  EXPECT_EQ(results[0].server_cnt, 2);

  // Burn the other 15 pending slots so the next call reuses slot 1.
  for (int i = 0; i < 15; ++i) {
    client->call(args, [&](netrpc::CallResult r) { results.push_back(r); });
  }
  // The stall lifts at 1ms: the fillers finish and call #1's straggler
  // response reaches the PFE, where it re-claims the (reset) slot.
  sim.run_until(at_us(1050));
  ASSERT_EQ(results.size(), 16u);

  // The call that reuses slot 1 must merge exactly its own 3 responses.
  client->call(args, [&](netrpc::CallResult r) { results.push_back(r); });
  sim.run_until(at_us(1300));
  ASSERT_EQ(results.size(), 17u);
  const netrpc::CallResult& reused = results.back();
  EXPECT_FALSE(reused.degraded);
  EXPECT_EQ(reused.server_cnt, 3);
  EXPECT_EQ(reused.values, expected_sum(args, reused.rpc_id, 3));
  // The stale residue was detected and reclaimed, not merged.
  EXPECT_GE(mgr.netrpc_app()->counter_packets(4, netrpc::kCtrStale), 1u);
  EXPECT_EQ(client->degraded_calls(), 1u);
}

TEST(NetRpc, KeyOpsBetweenCallsNeverCollideLiveCallsOnASlot) {
  // REVIEW.md medium: get()/put() used to share the call id sequence, so
  // 15 key ops between two call()s put both live calls on the same
  // pending slot and the PFE merged them into each other. Key ops now
  // draw from their own sequence and the call allocator skips held
  // slots.
  Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  // Aging far beyond the straggle keeps call A live the whole time.
  mgr.set_netrpc_aging(sim::Duration::millis(10));
  ASSERT_TRUE(mgr.admit(netrpc_tenant(4)).admitted);
  netrpc::RpcClient* client = mgr.tenant_rpc_client(4, 0);
  ASSERT_NE(client, nullptr);
  auto& sim = cl.simulator();
  const std::vector<std::uint32_t> args{1, 2, 3, 4, 5, 6, 7, 8};

  // Call A stays live while 15 key ops advance the shared counter the
  // old code used for everything.
  mgr.tenant_rpc_server(4, 3)->stall_for(sim::Duration::millis(2));
  std::vector<netrpc::CallResult> results;
  client->call(args, [&](netrpc::CallResult r) { results.push_back(r); });
  for (std::uint64_t k = 0; k < 15; ++k) {
    client->put(k, args, [](netrpc::PutResult) {});
  }
  sim.run_until(at_us(500));
  ASSERT_TRUE(results.empty());  // A still pending on the straggler

  // Call B must land on its own slot. With the old shared id sequence B
  // took A's slot: B's fast responses completed on top of A's partial
  // merge (wrong values, one response early) and A never completed.
  client->call(args, [&](netrpc::CallResult r) { results.push_back(r); });
  sim.run_until(at_us(1000));
  ASSERT_TRUE(results.empty());  // B waits on the straggler too — no
                                 // cross-call completion possible

  // The stall lifts at 2ms: both calls complete at full fan-in, each
  // merging exactly its own 3 responses.
  sim.run_until(at_us(2500));
  ASSERT_EQ(results.size(), 2u);
  for (const netrpc::CallResult& r : results) {
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.server_cnt, 3);
    EXPECT_EQ(r.values, expected_sum(args, r.rpc_id, 3));
  }
  EXPECT_NE(results[0].rpc_id, results[1].rpc_id);
  EXPECT_EQ(mgr.netrpc_app()->counter_packets(4, netrpc::kCtrStale), 0u);
}

TEST(NetRpc, CacheDropFaultForcesRefill) {
  Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(netrpc_tenant(4)).admitted);
  netrpc::RpcClient* client = mgr.tenant_rpc_client(4, 0);
  auto& sim = cl.simulator();

  faults::FaultInjector injector(cl.simulator());
  injector.bind(cl);
  mgr.bind_fault_injector(injector);
  injector.arm(
      faults::FaultSchedule::parse("at 500us drop-buckets leaf:0 tenant=4"));

  std::vector<netrpc::GetResult> gets;
  auto get = [&](std::uint64_t key) {
    client->get(key, [&](netrpc::GetResult r) { gets.push_back(r); });
    sim.run_until(sim.now() + sim::Duration::micros(100));
  };
  get(2);  // miss + fill
  get(2);  // hit
  EXPECT_GT(mgr.netrpc_app()->cache_entries(4), 0u);

  sim.run_until(at_us(600));  // the fault fires: cache state is destroyed
  EXPECT_EQ(mgr.netrpc_app()->cache_entries(4), 0u);
  EXPECT_GT(injector.buckets_dropped(), 0u);

  get(2);  // refilled from the home replica, not served stale
  get(2);
  ASSERT_EQ(gets.size(), 4u);
  EXPECT_TRUE(gets[1].cached);
  EXPECT_FALSE(gets[2].cached);
  EXPECT_TRUE(gets[3].cached);
  EXPECT_EQ(gets[0].values, gets[2].values);

  bool logged = false;
  for (const auto& e : injector.log()) {
    if (e.what.find("drop-cache leaf:0 tenant=4") != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);
}

// --- Co-tenancy with Trio-ML ------------------------------------------------

TEST(NetRpc, CoTenantAllreduceStaysBitIdentical) {
  // Solo allreduce baseline.
  std::uint64_t solo_digest = 0;
  std::vector<trioml::AllreduceResult> solo_results;
  {
    Cluster cl(netrpc_spec());
    jobs::JobManager mgr(cl);
    ASSERT_TRUE(mgr.admit(allreduce_tenant(2)).admitted);
    mgr.enable_isolation();
    const auto run = mgr.run(1, at_us(50'000));
    ASSERT_EQ(run.tenant(2)->finished, cl.num_workers());
    solo_digest = run.tenant(2)->digest();
    solo_results = run.tenant(2)->results;
  }

  // The same job beside a netrpc tenant sharing leaf 0's PFE, SMS and
  // hash table (partitioned).
  auto co_run = [&](std::uint64_t* allreduce_digest) {
    Cluster cl(netrpc_spec());
    jobs::JobManager mgr(cl);
    EXPECT_TRUE(mgr.admit(allreduce_tenant(2)).admitted);
    EXPECT_TRUE(mgr.admit(netrpc_tenant(4)).admitted);
    mgr.enable_isolation();
    const auto run = mgr.run(1, at_us(50'000));
    EXPECT_EQ(run.tenant(2)->finished, cl.num_workers());
    EXPECT_EQ(run.tenant(4)->finished, 1);
    EXPECT_EQ(run.tenant(4)->netrpc.calls, 16u);
    *allreduce_digest = run.tenant(2)->digest();
    EXPECT_TRUE(cluster::bit_identical(solo_results, run.tenant(2)->results));
    return run.tenant(4)->digest();
  };
  std::uint64_t co_allreduce = 0;
  const std::uint64_t netrpc_a = co_run(&co_allreduce);
  EXPECT_EQ(co_allreduce, solo_digest);

  // And the whole co-tenant composition replays bit-identically.
  std::uint64_t co_allreduce_b = 0;
  const std::uint64_t netrpc_b = co_run(&co_allreduce_b);
  EXPECT_EQ(co_allreduce, co_allreduce_b);
  EXPECT_EQ(netrpc_a, netrpc_b);
}

TEST(NetRpc, SoloDigestIsDeterministic) {
  auto once = [] {
    Cluster cl(netrpc_spec());
    jobs::JobManager mgr(cl);
    EXPECT_TRUE(mgr.admit(netrpc_tenant(4)).admitted);
    const auto run = mgr.run(1, at_us(50'000));
    return run.tenant(4)->digest();
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 14695981039346656037ull);
}

// --- Per-tenant telemetry scopes (docs/telemetry.md) ------------------------

TEST(NetRpc, TenantScopedMetricsAppearUnderTenantPrefix) {
  telemetry::Telemetry telem(/*metrics_on=*/true, /*trace_on=*/false);
  ClusterSpec spec = netrpc_spec();
  spec.telemetry = &telem;
  Cluster cl(spec);
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(netrpc_tenant(4)).admitted);
  const auto run = mgr.run(1, at_us(50'000));
  ASSERT_EQ(run.tenant(4)->finished, 1);
  EXPECT_EQ(telem.metrics.counter_value("tenant.4.client0.cached_gets"),
            run.tenant(4)->netrpc.cached_gets);
}

// --- Admission --------------------------------------------------------------

TEST(NetRpcAdmission, RejectsWhenRackZeroIsTooSmall) {
  Cluster cl(netrpc_spec());  // 4 hosts per rack
  jobs::JobManager mgr(cl);
  jobs::TenantSpec spec = netrpc_tenant(4);
  spec.rpc_servers = 4;  // 1 client + 4 servers > 4 hosts
  const auto r = mgr.admit(spec);
  EXPECT_FALSE(r.admitted);
  EXPECT_NE(r.reason.find("exceed rack 0's"), std::string::npos);
  EXPECT_EQ(mgr.netrpc_app(), nullptr);
  EXPECT_EQ(cl.leaf(0).pfe(0).sms().tenant_bytes_used(4), 0u);
}

TEST(NetRpcAdmission, TeardownReleasesSmsAndStopsMatching) {
  Cluster cl(netrpc_spec());
  jobs::JobManager mgr(cl);
  ASSERT_TRUE(mgr.admit(netrpc_tenant(4)).admitted);
  EXPECT_GT(cl.leaf(0).pfe(0).sms().tenant_bytes_used(4), 0u);
  ASSERT_TRUE(mgr.netrpc_app()->has_service(4));
  mgr.teardown(4);
  EXPECT_FALSE(mgr.netrpc_app()->has_service(4));
  EXPECT_EQ(cl.leaf(0).pfe(0).sms().tenant_bytes_used(4), 0u);
  EXPECT_TRUE(mgr.admitted().empty());
}

// --- The PISA baseline's structural limits ----------------------------------

TEST(NetRpcBaseline, MajorityIsStructurallyImpossible) {
  sim::Simulator sim;
  pisa::SwitchConfig sc;
  pisa::Switch sw(sim, sc);
  netrpc::PisaRpcConfig cfg;
  cfg.policy = netrpc::MergePolicy::kMajority;
  // Boyer-Moore needs a dependent read-modify-write pair per element —
  // two accesses to the same register array in one traversal, which PISA
  // stages cannot express.
  EXPECT_THROW(netrpc::PisaRpcSwitch(sw, cfg, {0}, {1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
