// Property-style tests: randomized and parameterized sweeps over the
// substrates' invariants, driven by the deterministic sim::Rng so every
// failure is reproducible.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "microcode/bitfield.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "trio/forwarding.hpp"
#include "trio/reorder.hpp"
#include "trio/sms.hpp"
#include "trioml/testbed.hpp"
#include "trioml/wire_format.hpp"

namespace {

// ---------------------------------------------------------------------------
// Bitfield invariants

TEST(BitfieldProperty, RandomRoundTripsPreserveNeighbours) {
  sim::Rng rng(0xb17f);
  for (int trial = 0; trial < 2000; ++trial) {
    net::Buffer buf(32);
    // Background pattern.
    for (std::size_t i = 0; i < 32; ++i) {
      buf.set_u8(i, static_cast<std::uint8_t>(rng.next_u64()));
    }
    const auto width = static_cast<unsigned>(rng.uniform_int(1, 64));
    const auto bit_off = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(32 * 8 - width)));
    const std::uint64_t value =
        width == 64 ? rng.next_u64() : rng.next_u64() & ((1ull << width) - 1);

    net::Buffer before = buf;
    microcode::write_bits(buf, bit_off, width, value);
    ASSERT_EQ(microcode::read_bits(buf, bit_off, width), value)
        << "width=" << width << " off=" << bit_off;
    // All bits outside [bit_off, bit_off+width) unchanged.
    for (std::size_t b = 0; b < 32 * 8; ++b) {
      if (b >= bit_off && b < bit_off + width) continue;
      ASSERT_EQ(microcode::read_bits(buf, b, 1),
                microcode::read_bits(before, b, 1))
          << "bit " << b << " disturbed (field off=" << bit_off
          << " width=" << width << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Trio-ML header: random field values survive the wire

TEST(WireFormatProperty, RandomHeadersRoundTrip) {
  sim::Rng rng(0x3ad0);
  for (int trial = 0; trial < 5000; ++trial) {
    trioml::TrioMlHeader h;
    h.job_id = static_cast<std::uint8_t>(rng.next_u64());
    h.block_id = static_cast<std::uint32_t>(rng.next_u64());
    h.age_op = static_cast<std::uint8_t>(rng.next_u64() & 0xf);
    h.final_block = rng.bernoulli(0.5);
    h.degraded = rng.bernoulli(0.5);
    h.src_id = static_cast<std::uint8_t>(rng.next_u64());
    h.src_cnt = static_cast<std::uint8_t>(rng.next_u64());
    h.gen_id = static_cast<std::uint16_t>(rng.next_u64());
    h.grad_cnt = static_cast<std::uint16_t>(rng.next_u64() & 0xfff);

    net::Buffer buf(trioml::TrioMlHeader::kSize);
    h.write(buf, 0);
    const auto p = trioml::TrioMlHeader::parse(buf, 0);
    ASSERT_EQ(p.job_id, h.job_id);
    ASSERT_EQ(p.block_id, h.block_id);
    ASSERT_EQ(p.age_op, h.age_op);
    ASSERT_EQ(p.final_block, h.final_block);
    ASSERT_EQ(p.degraded, h.degraded);
    ASSERT_EQ(p.src_id, h.src_id);
    ASSERT_EQ(p.src_cnt, h.src_cnt);
    ASSERT_EQ(p.gen_id, h.gen_id);
    ASSERT_EQ(p.grad_cnt, h.grad_cnt);
  }
}

// ---------------------------------------------------------------------------
// SMS against a reference model

TEST(SmsProperty, RandomOpSequenceMatchesReferenceModel) {
  sim::Simulator sim;
  trio::SharedMemorySystem sms(sim, trio::Calibration{});
  std::map<std::uint64_t, std::uint8_t> ref;  // byte-level shadow
  sim::Rng rng(0x5e5);

  auto ref_u32 = [&](std::uint64_t addr) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = v << 8 | ref[addr + std::uint64_t(i)];
    return v;
  };
  auto ref_set_u32 = [&](std::uint64_t addr, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      ref[addr + std::uint64_t(i)] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  auto ref_u64 = [&](std::uint64_t addr) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = v << 8 | ref[addr + std::uint64_t(i)];
    return v;
  };
  auto ref_set_u64 = [&](std::uint64_t addr, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      ref[addr + std::uint64_t(i)] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };

  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t addr = rng.next_below(4096) * 8;  // 32 KB arena
    trio::XtxnRequest req;
    switch (rng.next_below(5)) {
      case 0: {  // write random 8 bytes
        req.op = trio::XtxnOp::kWrite;
        req.addr = addr;
        req.data.resize(8);
        for (auto& b : req.data) b = static_cast<std::uint8_t>(rng.next_u64());
        for (std::size_t i = 0; i < 8; ++i) ref[addr + i] = req.data[i];
        sms.issue(req, {});
        break;
      }
      case 1: {  // fetch-add32
        const auto inc = static_cast<std::uint32_t>(rng.next_u64());
        req.op = trio::XtxnOp::kFetchAdd32;
        req.addr = addr;
        req.arg0 = inc;
        sms.issue(req, {});
        ref_set_u32(addr, ref_u32(addr) + inc);
        break;
      }
      case 2: {  // fetch-or64
        const std::uint64_t m = rng.next_u64();
        req.op = trio::XtxnOp::kFetchOr64;
        req.addr = addr;
        req.arg0 = m;
        sms.issue(req, {});
        ref_set_u64(addr, ref_u64(addr) | m);
        break;
      }
      case 3: {  // masked write
        const std::uint64_t v = rng.next_u64();
        const std::uint64_t m = rng.next_u64();
        req.op = trio::XtxnOp::kMaskedWrite64;
        req.addr = addr;
        req.arg0 = v;
        req.arg1 = m;
        sms.issue(req, {});
        ref_set_u64(addr, (ref_u64(addr) & ~m) | (v & m));
        break;
      }
      case 4: {  // vector add of 4 gradients
        req.op = trio::XtxnOp::kAddVec32;
        req.addr = addr;
        req.data.resize(16);
        for (auto& b : req.data) b = static_cast<std::uint8_t>(rng.next_u64());
        for (int g = 0; g < 4; ++g) {
          std::uint32_t inc = 0;
          for (int i = 3; i >= 0; --i) {
            inc = inc << 8 | req.data[static_cast<std::size_t>(g * 4 + i)];
          }
          ref_set_u32(addr + std::uint64_t(g) * 4,
                      ref_u32(addr + std::uint64_t(g) * 4) + inc);
        }
        sms.issue(req, {});
        break;
      }
    }
  }
  sim.run();
  for (const auto& [addr, byte] : ref) {
    ASSERT_EQ(sms.peek_u8(addr), byte) << "divergence at " << addr;
  }
}

// ---------------------------------------------------------------------------
// Reorder engine: any close order preserves per-flow open order

TEST(ReorderProperty, RandomCompletionOrderPreservesFlowOrder) {
  sim::Rng rng(0x0e0e);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> released;  // flow, seq
    trio::ReorderEngine re([&](trio::ReorderEngine::Output out) {
      released.emplace_back(out.nexthop_id >> 16, out.nexthop_id & 0xffff);
    });
    struct Item {
      std::uint64_t ticket;
      std::uint64_t flow;
      std::uint64_t seq;
    };
    std::vector<Item> open;
    std::vector<std::uint64_t> next_seq(4, 0);
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t flow = rng.next_below(4);
      const std::uint64_t seq = next_seq[flow]++;
      const auto t = re.open(flow);
      re.attach(t, {nullptr, static_cast<std::uint32_t>(flow << 16 | seq)});
      open.push_back({t, flow, seq});
    }
    // Close in random order.
    while (!open.empty()) {
      const std::size_t k = rng.next_below(open.size());
      re.close(open[k].ticket);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(k));
    }
    ASSERT_EQ(released.size(), 100u);
    std::vector<std::uint64_t> seen(4, 0);
    for (const auto& [flow, seq] : released) {
      ASSERT_EQ(seq, seen[flow]++) << "flow " << flow << " out of order";
    }
  }
}

// ---------------------------------------------------------------------------
// LPM against a linear reference

TEST(ForwardingProperty, LpmMatchesLinearScan) {
  sim::Rng rng(0x10b);
  trio::ForwardingTable fwd;
  struct Route {
    std::uint32_t prefix;
    int len;
    std::uint32_t nh;
  };
  std::vector<Route> routes;
  for (int i = 0; i < 300; ++i) {
    const int len = static_cast<int>(rng.next_below(33));
    const std::uint32_t raw = static_cast<std::uint32_t>(rng.next_u64());
    const std::uint32_t mask =
        len == 0 ? 0 : (len >= 32 ? ~0u : ~((1u << (32 - len)) - 1));
    const std::uint32_t prefix = raw & mask;
    const auto nh = fwd.add_nexthop(trio::NexthopDiscard{});
    fwd.add_route(net::Ipv4Addr(prefix), len, nh);
    routes.push_back({prefix, len, nh});
  }
  for (int q = 0; q < 5000; ++q) {
    const auto addr = static_cast<std::uint32_t>(rng.next_u64());
    // Linear reference: longest match wins; later insert wins ties.
    int best_len = -1;
    std::uint32_t best_nh = 0;
    for (const auto& r : routes) {
      const std::uint32_t mask =
          r.len == 0 ? 0 : (r.len >= 32 ? ~0u : ~((1u << (32 - r.len)) - 1));
      if ((addr & mask) == r.prefix && r.len >= best_len) {
        best_len = r.len;
        best_nh = r.nh;
      }
    }
    const auto got = fwd.lookup(net::Ipv4Addr(addr));
    if (best_len < 0) {
      ASSERT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(*got, best_nh) << "addr " << addr;
    }
  }
}

// ---------------------------------------------------------------------------
// Quantisation error bound

TEST(QuantizeProperty, ErrorBoundedByHalfStep) {
  sim::Rng rng(0x9e);
  for (int i = 0; i < 10'000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1000.0, 1000.0));
    const float back = trioml::dequantize(trioml::quantize(v));
    ASSERT_NEAR(back, v, 0.5f / (1 << 16) + 1e-7f);
  }
}

// ---------------------------------------------------------------------------
// End-to-end aggregation sweep: parameterized over (workers, grads/pkt,
// window, hierarchical) with randomized gradients, verified exactly.

using AggParams = std::tuple<int, int, std::uint32_t, bool>;

class AggregationSweep : public ::testing::TestWithParam<AggParams> {};

TEST_P(AggregationSweep, SumsExactly) {
  const auto [workers, grads_per_packet, window, hierarchical] = GetParam();
  trioml::TestbedConfig cfg;
  cfg.num_workers = workers;
  cfg.grads_per_packet = static_cast<std::uint16_t>(grads_per_packet);
  cfg.window = window;
  cfg.hierarchical = hierarchical;
  trioml::Testbed tb(cfg);

  const std::size_t total = static_cast<std::size_t>(grads_per_packet) * 7;
  sim::Rng rng(static_cast<std::uint64_t>(workers * 1000 + grads_per_packet));
  std::vector<std::vector<std::uint32_t>> grads(
      static_cast<std::size_t>(workers));
  std::vector<std::uint32_t> expected_sum(total, 0);
  for (int w = 0; w < workers; ++w) {
    auto& g = grads[static_cast<std::size_t>(w)];
    g.resize(total);
    for (std::size_t i = 0; i < total; ++i) {
      g[i] = static_cast<std::uint32_t>(rng.next_below(1 << 20));
      expected_sum[i] += g[i];
    }
  }

  int done = 0;
  std::vector<trioml::AllreduceResult> results(
      static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    tb.worker(w).start_allreduce(
        grads[static_cast<std::size_t>(w)], 1,
        [&, w](trioml::AllreduceResult r) {
          results[static_cast<std::size_t>(w)] = std::move(r);
          ++done;
        });
  }
  tb.simulator().run();
  ASSERT_EQ(done, workers);
  for (int w = 0; w < workers; ++w) {
    const auto& r = results[static_cast<std::size_t>(w)];
    ASSERT_EQ(r.degraded_blocks, 0u);
    for (std::size_t i = 0; i < total; ++i) {
      const float expected =
          trioml::dequantize(static_cast<std::int32_t>(expected_sum[i])) /
          static_cast<float>(workers);
      ASSERT_NEAR(r.grads[i], expected, 1e-4f)
          << "worker " << w << " gradient " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregationSweep,
    ::testing::Values(
        AggParams{2, 64, 1, false}, AggParams{2, 1024, 4, false},
        AggParams{3, 100, 2, false},  // non-power-of-two gradient count
        AggParams{4, 256, 16, false}, AggParams{4, 512, 64, false},
        AggParams{6, 1024, 16, false}, AggParams{8, 128, 8, false},
        AggParams{6, 256, 8, true},   // hierarchical
        AggParams{6, 1024, 32, true}, AggParams{4, 64, 4, true},
        AggParams{2, 1, 1, false},    // single-gradient blocks
        AggParams{5, 333, 5, false}));

// ---------------------------------------------------------------------------
// Packet loss + retransmission (paper §7 "Packet loss in Trio-ML"):
// lossy uplinks, 1 ms retransmission, aggregator dedupe by src_id.

TEST(LossRecovery, RetransmissionSurvivesLossyLinks) {
  trioml::TestbedConfig cfg;
  cfg.num_workers = 3;
  cfg.grads_per_packet = 256;
  cfg.window = 8;
  trioml::Testbed tb(cfg);
  // 5% loss on every worker's uplink; enable host retransmission by
  // rebuilding workers is invasive, so flip the flag via the test API:
  for (int w = 0; w < 3; ++w) {
    tb.link(w).a_to_b().set_loss(0.05, static_cast<std::uint64_t>(w) + 77);
    tb.worker(w).enable_retransmit(sim::Duration::millis(1));
  }

  const std::size_t total = 256 * 32;
  int done = 0;
  for (int w = 0; w < 3; ++w) {
    std::vector<std::uint32_t> g(total, static_cast<std::uint32_t>(w + 1));
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](trioml::AllreduceResult r) {
                                   ++done;
                                   EXPECT_EQ(r.degraded_blocks, 0u);
                                   for (float v : r.grads) {
                                     EXPECT_NEAR(
                                         v,
                                         trioml::dequantize(6) / 3.0f,
                                         1e-6f);
                                   }
                                 });
  }
  tb.simulator().run_until(sim::Time(sim::Duration::seconds(2).ns()));
  EXPECT_EQ(done, 3) << "allreduce must survive 5% loss via retransmission";
  std::uint64_t retx = 0;
  for (int w = 0; w < 3; ++w) retx += tb.worker(w).retransmissions();
  EXPECT_GT(retx, 0u);
  // Duplicates caused by retransmitting delivered-but-unanswered blocks
  // are recognised by src_id and not double-added.
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 32u);
}

// ---------------------------------------------------------------------------
// Mixed workloads: aggregation and plain IP forwarding share the PFE —
// "processing cycles are fungible between applications" (§2.2).

TEST(MixedTraffic, ForwardingAndAggregationCoexist) {
  trioml::TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 512;
  cfg.window = 8;
  trioml::Testbed tb(cfg);

  // Route some bystander traffic through the same PFE.
  auto& fwd = tb.router().forwarding();
  const auto nh = fwd.add_nexthop(trio::NexthopUnicast{6, {}});
  fwd.add_route(net::Ipv4Addr::from_string("172.16.0.0"), 12, nh);
  int forwarded = 0;
  tb.router().attach_port_sink(6, [&](net::PacketPtr) { ++forwarded; });

  int done = 0;
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> g(512 * 16, 5);
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](trioml::AllreduceResult) { ++done; });
  }
  // Interleave 500 forwarded packets while the aggregation runs.
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> payload(200, 0);
    auto frame = net::build_udp_frame(
        {9, 9, 9, 9, 9, 9}, {8, 8, 8, 8, 8, 8},
        net::Ipv4Addr::from_string("10.0.0.1"),
        net::Ipv4Addr::from_string("172.16.3.4"), 7, 8, payload);
    tb.router().receive(net::Packet::make(std::move(frame)), 0);
  }
  tb.simulator().run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(forwarded, 500);
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 16u);
}

}  // namespace
