#include <gtest/gtest.h>

#include "microcode/bitfield.hpp"
#include "microcode/compiler.hpp"
#include "microcode/error.hpp"
#include "microcode/interpreter.hpp"
#include "microcode/lexer.hpp"
#include "microcode/parser.hpp"
#include "trio/router.hpp"

namespace {

using microcode::CompileError;

// ---------------------------------------------------------------------------
// Bitfields

TEST(Bitfield, MsbFirstSemantics) {
  net::Buffer b(4);
  microcode::write_bits(b, 0, 4, 0xA);
  microcode::write_bits(b, 4, 4, 0x5);
  EXPECT_EQ(b.u8(0), 0xA5);
  EXPECT_EQ(microcode::read_bits(b, 0, 8), 0xA5u);
}

TEST(Bitfield, CrossByteField) {
  net::Buffer b(4);
  microcode::write_bits(b, 4, 16, 0xbeef);
  EXPECT_EQ(microcode::read_bits(b, 4, 16), 0xbeefu);
  EXPECT_EQ(microcode::read_bits(b, 0, 4), 0u);
  EXPECT_EQ(microcode::read_bits(b, 20, 4), 0u);
}

TEST(Bitfield, WidthValidation) {
  net::Buffer b(16);
  EXPECT_THROW(microcode::read_bits(b, 0, 0), std::invalid_argument);
  EXPECT_THROW(microcode::read_bits(b, 0, 65), std::invalid_argument);
  EXPECT_THROW(microcode::read_bits(b, 16 * 8 - 4, 8), std::out_of_range);
}

TEST(Bitfield, SixtyFourBitRoundTrip) {
  net::Buffer b(9);
  microcode::write_bits(b, 3, 64, 0xfedcba9876543210ull);
  EXPECT_EQ(microcode::read_bits(b, 3, 64), 0xfedcba9876543210ull);
}

// ---------------------------------------------------------------------------
// Lexer

TEST(Lexer, TokenizesOperatorsAndNumbers) {
  const auto toks = microcode::lex("x == 0x0800 << 2 // comment\n != 10");
  ASSERT_GE(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, microcode::TokKind::kIdent);
  EXPECT_EQ(toks[1].kind, microcode::TokKind::kEq);
  EXPECT_EQ(toks[2].number, 0x800u);
  EXPECT_EQ(toks[3].kind, microcode::TokKind::kShl);
  EXPECT_EQ(toks[5].kind, microcode::TokKind::kNe);
  EXPECT_EQ(toks[6].number, 10u);
}

TEST(Lexer, TracksLineNumbers) {
  const auto toks = microcode::lex("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(Lexer, BlockComments) {
  const auto toks = microcode::lex("a /* x\ny */ b");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_THROW(microcode::lex("/* unterminated"), CompileError);
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_THROW(microcode::lex("a @ b"), CompileError);
  EXPECT_THROW(microcode::lex("0xZZ"), CompileError);
}

// ---------------------------------------------------------------------------
// Parser

TEST(Parser, StructWithAnonymousPadding) {
  const auto m = microcode::parse(R"(
    struct hdr_t {
      a : 8;
        : 4;
      b : 12;
    };
  )");
  ASSERT_EQ(m.structs.size(), 1u);
  EXPECT_EQ(m.structs[0].fields.size(), 3u);
  EXPECT_TRUE(m.structs[0].fields[1].name.empty());
}

TEST(Parser, InstructionBlockWithIfGoto) {
  const auto m = microcode::parse(R"(
    start:
    begin
      ir0 = 1;
      if (ir0 == 1) { goto start; }
      goto start;
    end
  )");
  ASSERT_EQ(m.blocks.size(), 1u);
  EXPECT_EQ(m.blocks[0].stmts.size(), 3u);
}

TEST(Parser, SyntaxErrorsCarryLocation) {
  try {
    microcode::parse("start:\nbegin\n  ir0 = ;\nend\n");
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Parser, GlobalStorageClasses) {
  const auto m = microcode::parse(R"(
    struct ether_t { etype : 16; };
    memory ether_t *ether_ptr = 0;
    register counter;
    virtual const BASE = 0x100;
  )");
  EXPECT_EQ(m.globals.size(), 3u);
  EXPECT_EQ(m.globals[0].storage, microcode::StorageClass::kMemory);
  EXPECT_TRUE(m.globals[0].is_pointer);
  EXPECT_EQ(m.globals[2].storage, microcode::StorageClass::kVirtual);
}

// ---------------------------------------------------------------------------
// Compiler (TC-style checks)

TEST(Compiler, VirtualConstFolding) {
  const auto p = microcode::compile(R"(
    virtual const A = 4;
    virtual const B = A * 2 + 1;
    main:
    begin
      ir0 = B;
      Exit();
    end
  )");
  EXPECT_EQ(p->location("B").const_value, 9u);
}

TEST(Compiler, SizeofStruct) {
  const auto p = microcode::compile(R"(
    struct ipv4_t { ver : 4; ihl : 4; rest : 24; };
    main:
    begin
      ir0 = sizeof(ipv4_t);
      Exit();
    end
  )");
  // 32 bits -> 4 bytes.
  EXPECT_EQ(p->structs.at("ipv4_t")->size_bytes(), 4u);
}

TEST(Compiler, UndefinedLabelFails) {
  EXPECT_THROW(microcode::compile(R"(
    main:
    begin
      goto nowhere;
    end
  )"),
               CompileError);
}

TEST(Compiler, DuplicateLabelFails) {
  EXPECT_THROW(microcode::compile("a:\nbegin\nend\na:\nbegin\nend\n"),
               CompileError);
}

TEST(Compiler, UndeclaredVariableFails) {
  EXPECT_THROW(microcode::compile("main:\nbegin\nir0 = zork;\nend\n"),
               CompileError);
}

TEST(Compiler, UnknownFieldFails) {
  EXPECT_THROW(microcode::compile(R"(
    struct h_t { a : 8; };
    memory h_t *p = 0;
    main:
    begin
      ir0 = p->nope;
      Exit();
    end
  )"),
               CompileError);
}

TEST(Compiler, TooManyWritesDoesNotFit) {
  // Three writes in one instruction exceeds the two-write budget; TC
  // "fails the compilation because it cannot implement the requested
  // actions across multiple instructions" (§3.1).
  EXPECT_THROW(microcode::compile(R"(
    main:
    begin
      ir0 = 1;
      ir1 = 2;
      ir2 = 3;
    end
  )"),
               CompileError);
}

TEST(Compiler, TooManyLmemReadsDoesNotFit) {
  EXPECT_THROW(microcode::compile(R"(
    struct h_t { a : 8; b : 8; c : 8; };
    memory h_t *p = 0;
    main:
    begin
      ir0 = p->a + p->b + p->c;
      Exit();
    end
  )"),
               CompileError);
}

TEST(Compiler, SplittingAcrossInstructionsFits) {
  // The same work split over two instruction blocks compiles.
  EXPECT_NO_THROW(microcode::compile(R"(
    struct h_t { a : 8; b : 8; c : 8; };
    memory h_t *p = 0;
    first:
    begin
      ir0 = p->a + p->b;
      goto second;
    end
    second:
    begin
      ir0 = ir0 + p->c;
      Exit();
    end
  )"));
}

TEST(Compiler, ReportsResourceUsage) {
  const auto p = microcode::compile(R"(
    main:
    begin
      ir0 = ir1 + ir2;
      Exit();
    end
  )");
  EXPECT_EQ(p->resources[0].reg_reads, 2);
  EXPECT_EQ(p->resources[0].writes, 1);
  EXPECT_EQ(p->resources[0].alu_ops, 1);
}

TEST(Compiler, SyncIntrinsicOnlyAsTopLevelAssignment) {
  EXPECT_THROW(microcode::compile(R"(
    main:
    begin
      ir0 = SmsRead64(0) + 1;
      Exit();
    end
  )"),
               CompileError);
  EXPECT_NO_THROW(microcode::compile(R"(
    main:
    begin
      ir0 = SmsRead64(0);
      Exit();
    end
  )"));
}

TEST(Compiler, IntrinsicArityChecked) {
  EXPECT_THROW(microcode::compile(R"(
    main:
    begin
      CounterIncPhys(1);
      Exit();
    end
  )"),
               CompileError);
}

TEST(Compiler, EmptyProgramFails) {
  EXPECT_THROW(microcode::compile("memory x;"), CompileError);
}

// ---------------------------------------------------------------------------
// Interpreter on a simulated router: the paper's §3.2 filter application.

const char* kFilterProgram = R"(
// Forward all IP packets with no optional headers; drop all non-IP
// packets and IP packets with options, counting each drop class.
struct ether_t {
  dmac : 48;
  smac : 48;
  etype : 16;
};

struct ipv4_t {
  ver : 4;
  ihl : 4;
  tos : 8;
  len : 16;
};

virtual const DROP_CNT_BASE = 64;
virtual const FWD_NEXTHOP = 0;
memory ether_t *ether_ptr = 0;

process_ether:
begin
  ir0 = 0;
  if (ether_ptr->etype == 0x0800) {
    goto process_ip;
  }
  goto count_dropped;
end

process_ip:
begin
  const ipv4_t *ipv4_addr = ether_ptr + sizeof(ether_t);
  ir0 = 1;
  if (ipv4_addr->ver == 4 && ipv4_addr->ihl == 5) {
    goto forward_packet;
  }
  goto count_dropped;
end

count_dropped:
begin
  const : addr = DROP_CNT_BASE + ir0 * 2;
  CounterIncPhys(addr, r_work.pkt_len);
  goto drop_packet;
end

forward_packet:
begin
  Forward(FWD_NEXTHOP);
  Exit();
end

drop_packet:
begin
  Drop();
end
)";

class FilterProgramTest : public ::testing::Test {
 protected:
  FilterProgramTest() : router(sim, trio::Calibration{}, 1, 4) {
    program = microcode::compile(kFilterProgram);
    // Nexthop 0: out of port 1.
    auto& fwd = router.forwarding();
    const auto nh = fwd.add_nexthop(trio::NexthopUnicast{1, {}});
    EXPECT_EQ(nh, 0u);
    router.pfe(0).set_program_factory(
        microcode::make_program_factory(program));
    router.attach_port_sink(1, [this](net::PacketPtr p) {
      forwarded.push_back(std::move(p));
    });
  }

  net::Buffer ip_frame(std::uint8_t ihl = 5, std::uint8_t version = 4) {
    std::vector<std::uint8_t> payload(100, 0);
    auto f = net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                  net::Ipv4Addr::from_string("10.0.0.1"),
                                  net::Ipv4Addr::from_string("10.0.0.2"),
                                  1, 2, payload);
    f.set_u8(net::UdpFrameLayout::kIpOff,
             static_cast<std::uint8_t>(version << 4 | ihl));
    return f;
  }

  net::Buffer non_ip_frame() {
    auto f = ip_frame();
    f.set_u16(12, 0x0806);  // ARP EtherType
    return f;
  }

  std::uint64_t drop_count(int idx) {
    // Counter word address 64 + idx*2 -> byte address * 8.
    return router.pfe(0).sms().peek_u64((64 + std::uint64_t(idx) * 2) * 8);
  }

  sim::Simulator sim;
  trio::Router router;
  std::shared_ptr<const microcode::CompiledProgram> program;
  std::vector<net::PacketPtr> forwarded;
};

TEST_F(FilterProgramTest, PaperExampleCompilesWithinBudget) {
  // "The Trio-ML Microcode program is quite compact" — the filter program
  // is 5 instructions and every block fits the VLIW resource budget.
  EXPECT_EQ(program->instruction_count(), 5u);
}

TEST_F(FilterProgramTest, ForwardsCleanIpPackets) {
  router.receive(net::Packet::make(ip_frame()), 0);
  sim.run();
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(drop_count(0), 0u);
  EXPECT_EQ(drop_count(1), 0u);
}

TEST_F(FilterProgramTest, DropsAndCountsNonIp) {
  router.receive(net::Packet::make(non_ip_frame()), 0);
  sim.run();
  EXPECT_TRUE(forwarded.empty());
  EXPECT_EQ(drop_count(0), 1u);  // non-IP counter
  EXPECT_EQ(drop_count(1), 0u);
}

TEST_F(FilterProgramTest, DropsAndCountsIpOptions) {
  router.receive(net::Packet::make(ip_frame(/*ihl=*/6)), 0);
  sim.run();
  EXPECT_TRUE(forwarded.empty());
  EXPECT_EQ(drop_count(1), 1u);  // IP-options counter
}

TEST_F(FilterProgramTest, ByteCounterTracksPacketLength) {
  router.receive(net::Packet::make(non_ip_frame()), 0);
  router.receive(net::Packet::make(non_ip_frame()), 0);
  sim.run();
  const std::uint64_t bytes = router.pfe(0).sms().peek_u64(64 * 8 + 8);
  EXPECT_EQ(bytes, 2u * (net::UdpFrameLayout::kPayloadOff + 100));
}

TEST_F(FilterProgramTest, MixedTrafficSortsCorrectly) {
  for (int i = 0; i < 10; ++i) {
    router.receive(net::Packet::make(ip_frame()), 0);
    router.receive(net::Packet::make(non_ip_frame()), 0);
    router.receive(net::Packet::make(ip_frame(6)), 0);
  }
  sim.run();
  EXPECT_EQ(forwarded.size(), 10u);
  EXPECT_EQ(drop_count(0), 10u);
  EXPECT_EQ(drop_count(1), 10u);
}

// ---------------------------------------------------------------------------
// Interpreter features beyond the filter example.

class MicroRunner : public ::testing::Test {
 protected:
  MicroRunner() : router(sim, trio::Calibration{}, 1, 2) {}

  /// Runs `source` against one dummy packet; returns final SMS state via
  /// the router.
  void run(const std::string& source) {
    auto prog = microcode::compile(source);
    router.pfe(0).set_program_factory(microcode::make_program_factory(prog));
    std::vector<std::uint8_t> payload(64, 0);
    auto frame = net::build_udp_frame({1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                                      net::Ipv4Addr::from_string("10.0.0.1"),
                                      net::Ipv4Addr::from_string("10.0.0.2"),
                                      1, 2, payload);
    router.receive(net::Packet::make(std::move(frame)), 0);
    sim.run();
  }

  sim::Simulator sim;
  trio::Router router;
};

TEST_F(MicroRunner, SmsWriteAndReadBack) {
  run(R"(
    first:
    begin
      SmsWrite64(4096, 777);
      goto second;
    end
    second:
    begin
      ir1 = SmsRead64(4096);
      goto third;
    end
    third:
    begin
      SmsWrite64(4104, ir1 + 1);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(4104), 778u);
}

TEST_F(MicroRunner, CallReturnNesting) {
  run(R"(
    main:
    begin
      ir0 = 1;
      call sub;
    end
    after:
    begin
      SmsWrite64(2048, ir0);
      Exit();
    end
    sub:
    begin
      ir0 = ir0 + 10;
      return;
    end
  )");
  // call sub -> ir0 = 11, return resumes after the call: falls through to
  // block 'after'.
  EXPECT_EQ(router.pfe(0).sms().peek_u64(2048), 11u);
}

TEST_F(MicroRunner, FetchAddReturnsOldValue) {
  run(R"(
    a:
    begin
      ir0 = FetchAdd32(512, 5);
      goto b;
    end
    b:
    begin
      ir1 = FetchAdd32(512, 5);
      goto c;
    end
    c:
    begin
      SmsWrite64(1024, ir1);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(1024), 5u);
  EXPECT_EQ(router.pfe(0).sms().peek_u32(512), 10u);
}

TEST_F(MicroRunner, FetchSwapReturnsPreviousValueAndStoresNew) {
  run(R"(
    seed:
    begin
      SmsWrite64(512, 41);
      goto a;
    end
    a:
    begin
      ir0 = FetchSwap64(512, 99);
      goto b;
    end
    b:
    begin
      SmsWrite64(1024, ir0);
      goto c;
    end
    c:
    begin
      ir1 = FetchSwap64(512, 7);
      goto d;
    end
    d:
    begin
      SmsWrite64(1032, ir1);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(1024), 41u);  // first swap: seed out
  EXPECT_EQ(router.pfe(0).sms().peek_u64(1032), 99u);  // second: first's new
  EXPECT_EQ(router.pfe(0).sms().peek_u64(512), 7u);    // final stored value
}

TEST_F(MicroRunner, HashLookupMissGivesZero) {
  run(R"(
    a:
    begin
      ir0 = HashLookup(12345);
      goto b;
    end
    b:
    begin
      SmsWrite64(256, ir0 + 1);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(256), 1u);
}

TEST_F(MicroRunner, StructFieldWriteIntoHeader) {
  run(R"(
    struct ether_t { dmac : 48; smac : 48; etype : 16; };
    memory ether_t *e = 0;
    a:
    begin
      e->etype = 0x86dd;
      goto b;
    end
    b:
    begin
      ir0 = e->etype;
      goto c;
    end
    c:
    begin
      SmsWrite64(128, ir0);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(128), 0x86ddu);
}

TEST_F(MicroRunner, CallDepthLimitTraps) {
  // Self-recursive call exceeds the 8-deep hardware stack (§2.2).
  EXPECT_THROW(run(R"(
    main:
    begin
      call main;
    end
  )"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Multi-way branch + vector/hash XTXN edge cases — the shapes the netrpc
// datapath leans on (an order of magnitude more blocks than the §3.2
// filter: dispatch fans out over op codes, undecided cases fall through).

TEST_F(MicroRunner, MultiWayBranchFirstMatchingArmWins) {
  // Two arms of the dispatch both match; the textually first one must
  // take the branch (the datapath orders arms most-specific first).
  run(R"(
    dispatch:
    begin
      ir0 = 7;
      if (ir0 == 7) { goto first; }
      if (ir0 != 0) { goto second; }
      goto second;
    end
    first:
    begin
      SmsWrite64(640, 1);
      Exit();
    end
    second:
    begin
      SmsWrite64(640, 2);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(640), 1u);
}

TEST_F(MicroRunner, MultiWayBranchFallsThroughInLexicalOrder) {
  // No arm matches: the block falls through to the next *lexical* block,
  // and chained fallthroughs visit blocks strictly in order (fill_evict ->
  // fill_new -> fill_insert in the netrpc cache path relies on this).
  run(R"(
    dispatch:
    begin
      ir0 = 5;
      ir1 = 0;
      if (ir0 == 1) { goto elsewhere; }
      if (ir0 == 2) { goto elsewhere; }
    end
    step_a:
    begin
      ir1 = ir1 * 10 + 1;
    end
    step_b:
    begin
      ir1 = ir1 * 10 + 2;
    end
    step_c:
    begin
      SmsWrite64(648, ir1 * 10 + 3);
      Exit();
    end
    elsewhere:
    begin
      SmsWrite64(648, 999);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(648), 123u);
}

TEST_F(MicroRunner, SyncXtxnInsideCalledBlockResumesCaller) {
  // A synchronous XTXN suspends the thread mid-subroutine; the reply must
  // resume inside `sub` and the return must still land after the call.
  run(R"(
    main:
    begin
      SmsWrite64(704, 40);
      call sub;
    end
    after:
    begin
      SmsWrite64(712, ir0 + 2);
      Exit();
    end
    sub:
    begin
      ir0 = SmsRead64(704);
      return;
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(712), 42u);
}

TEST_F(MicroRunner, VectorXtxnLmemRangeTrapsInsideCall) {
  // The operand fetch of a vector XTXN is bounds-checked against the
  // thread's LMEM at issue time; an out-of-range request aborts the
  // thread (trap) even when issued from a nested subroutine.
  EXPECT_THROW(run(R"(
    main:
    begin
      call sub;
    end
    after:
    begin
      Exit();
    end
    sub:
    begin
      ir0 = SmsReadVec(0, 100000, 64);
      return;
    end
  )"),
               std::runtime_error);
}

TEST_F(MicroRunner, MinVec32FoldsAgainstPreset) {
  // MinVec32 merges LMEM words into a 0xffffffff-preset buffer (the min
  // policy's rest state). Byte-symmetric values keep the check
  // endianness-neutral.
  run(R"(
    struct words_t { w0 : 32; w1 : 32; };
    memory words_t *v = 48;
    a:
    begin
      SmsFill32(768, 0xffffffff, 8);
      v->w0 = 0x07070707;
      v->w1 = 0x03030303;
      MinVec32(768, 48, 8);
      goto b;
    end
    b:
    begin
      v->w0 = 0x05050505;
      v->w1 = 0x09090909;
      MinVec32(768, 48, 8);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u32(768), 0x05050505u);
  EXPECT_EQ(router.pfe(0).sms().peek_u32(772), 0x03030303u);
}

TEST_F(MicroRunner, VoteVec32StreamsBoyerMooreMajority) {
  // Split-plane majority: candidates at addr, counts at addr+len. Three
  // votes, two for 0x05050505 — the candidate plane must settle on it.
  run(R"(
    struct words_t { w0 : 32; };
    memory words_t *v = 48;
    a:
    begin
      v->w0 = 0x05050505;
      VoteVec32(832, 48, 4);
      goto b;
    end
    b:
    begin
      v->w0 = 0x0a0a0a0a;
      VoteVec32(832, 48, 4);
      goto c;
    end
    c:
    begin
      v->w0 = 0x05050505;
      VoteVec32(832, 48, 4);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u32(832), 0x05050505u);
  EXPECT_EQ(router.pfe(0).sms().peek_u32(836), 1u);  // count plane
}

TEST_F(MicroRunner, HashInsertRefusesDuplicateDeleteReports) {
  // HashInsert is a refused no-op while a fresh entry lives (the cache
  // fill path calls it unconditionally); HashDelete reports whether it
  // removed anything (the PUT invalidation counter gates on it).
  run(R"(
    a:
    begin
      ir0 = HashInsert(777, 4096);
      goto b;
    end
    b:
    begin
      ir1 = HashInsert(777, 8192);
      goto c;
    end
    c:
    begin
      ir2 = HashDelete(777);
      goto d;
    end
    d:
    begin
      ir3 = HashDelete(777);
      goto e;
    end
    e:
    begin
      SmsWrite64(896, ir0 * 1000 + ir1 * 100 + ir2 * 10 + ir3);
      Exit();
    end
  )");
  EXPECT_EQ(router.pfe(0).sms().peek_u64(896), 1010u);
}

}  // namespace
