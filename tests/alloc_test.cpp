// Allocation-count regression tests for the event-core fast path.
//
// The perf contract (docs/performance.md): once the queue's slot table,
// the heap array, and the packet pools are warm, the hot paths never touch
// the global allocator — not per scheduled event (InlineCallback storage
// is inline), not per recycled packet (BufferPool + the packet cell
// freelist). This binary overrides global operator new to count
// allocations and asserts *zero* across the measured steady-state windows.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "trio/router.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// Counting overrides: every allocation path funnels through these. delete
// is intentionally uncounted — the tests only care that the hot loops stop
// *acquiring* memory.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

/// A link-delivery-sized capture (~40 bytes): the event queue must store
/// it inline.
struct LinkSizedWork {
  std::uint64_t* sink;
  void* peer;
  int port;
  std::uint64_t a, b, c;
  void operator()() const { *sink += a + b + c + std::uint64_t(port); }
};

TEST(AllocCount, SteadyStateEventSchedulingIsAllocationFree) {
  static_assert(sim::InlineCallback::stores_inline<LinkSizedWork>());
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const LinkSizedWork work{&sink, nullptr, 3, 1, 2, 3};
  // Warm-up: grows the heap array, the slot table and the freelist to
  // their steady-state footprint.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_in(sim::Duration(i % 17), work);
    }
    sim.run();
  }
  const std::uint64_t before = allocs();
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_in(sim::Duration(i % 17), work);
    }
    sim.run();
  }
  EXPECT_EQ(allocs() - before, 0u) << "16384 events should allocate nothing";
  EXPECT_GT(sink, 0u);
}

TEST(AllocCount, CancelAndRescheduleIsAllocationFree) {
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const LinkSizedWork work{&sink, nullptr, 5, 4, 5, 6};
  std::vector<sim::EventId> ids(512);
  auto batch = [&] {
    for (int i = 0; i < 512; ++i) {
      ids[static_cast<std::size_t>(i)] =
          sim.schedule_in(sim::Duration(100 + i % 13), work);
    }
    for (int i = 0; i < 512; ++i) {
      sim.cancel(ids[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < 256; ++i) {
      sim.schedule_in(sim::Duration(i % 7), work);
    }
    sim.run();
  };
  for (int round = 0; round < 4; ++round) batch();  // warm-up
  const std::uint64_t before = allocs();
  for (int round = 0; round < 16; ++round) batch();
  EXPECT_EQ(allocs() - before, 0u);
}

TEST(AllocCount, CohortPopSteadyStateIsAllocationFree) {
  // run_window() dispatches same-instant events as cohorts through a
  // reused batch buffer; once that buffer and the heap are warm, crowded
  // timestamps must not allocate.
  sim::Simulator sim;
  std::uint64_t sink = 0;
  const LinkSizedWork work{&sink, nullptr, 3, 1, 2, 3};
  auto batch = [&] {
    for (int i = 0; i < 1024; ++i) {
      // 1024 events crowded onto 4 distinct instants: big cohorts.
      sim.schedule_in(sim::Duration(1 + i % 4), work);
    }
    sim.run_window(sim::Time::max());
  };
  for (int round = 0; round < 4; ++round) batch();  // warm-up
  const std::uint64_t before = allocs();
  for (int round = 0; round < 16; ++round) batch();
  EXPECT_EQ(allocs() - before, 0u) << "cohort dispatch should allocate nothing";
  EXPECT_GT(sink, 0u);
}

TEST(AllocCount, DeliveryBandSteadyStateIsAllocationFree) {
  // The cross-shard mailbox path: post() -> delivery band heap -> banded
  // pop. With link-sized captures and warm vectors the per-message cost
  // must be zero allocations.
  sim::ShardedSimulator engine(/*num_domains=*/2, /*num_shards=*/1,
                               sim::Duration::micros(1));
  sim::Simulator& s = engine.domain_sim(0);
  std::uint64_t sink = 0;
  const LinkSizedWork work{&sink, nullptr, 3, 1, 2, 3};
  auto batch = [&] {
    for (int i = 0; i < 512; ++i) {
      engine.post(/*src_domain=*/0, /*dst_domain=*/1,
                  s.now() + sim::Duration(1 + i % 5), work);
    }
    engine.run();
  };
  for (int round = 0; round < 4; ++round) batch();  // warm-up
  const std::uint64_t before = allocs();
  for (int round = 0; round < 16; ++round) batch();
  EXPECT_EQ(allocs() - before, 0u)
      << "8192 boundary messages should allocate nothing";
  EXPECT_GT(sink, 0u);
}

net::PacketPtr make_test_packet(const std::vector<std::uint8_t>& payload) {
  return net::Packet::make(net::build_udp_frame(
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
      net::Ipv4Addr::from_octets(10, 0, 0, 1),
      net::Ipv4Addr::from_octets(10, 0, 0, 2), 1, 2, payload));
}

TEST(AllocCount, RecycledPacketsAreAllocationFree) {
  const std::vector<std::uint8_t> payload(1024, 0xab);
  for (int i = 0; i < 64; ++i) {
    auto p = make_test_packet(payload);  // warm the pools
  }
  const std::uint64_t before = allocs();
  for (int i = 0; i < 4096; ++i) {
    auto p = make_test_packet(payload);
    // Dropped here: frame storage -> BufferPool, cell -> packet cell pool.
  }
  EXPECT_EQ(allocs() - before, 0u) << "4096 recycled packets, zero allocs";
}

/// Echo node: immediately retransmits every received frame on its own
/// endpoint — with its peer doing the same, one packet ping-pongs across
/// the two links forever, exercising link scheduling + packet transport.
class EchoNode : public net::Node {
 public:
  void attach(net::LinkEndpoint& tx) { tx_ = &tx; }
  void receive(net::PacketPtr pkt, int) override { tx_->send(std::move(pkt)); }
  std::string name() const override { return "echo"; }

 private:
  net::LinkEndpoint* tx_ = nullptr;
};

TEST(AllocCount, LinkEchoLoopSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  EchoNode a, b;
  net::Link ab(sim, 100.0, sim::Duration::micros(1));
  ab.attach(a, 0, b, 0);
  a.attach(ab.a_to_b());
  b.attach(ab.b_to_a());
  const std::vector<std::uint8_t> payload(1024, 0x5a);
  ASSERT_TRUE(ab.a_to_b().send(make_test_packet(payload)));
  // Warm-up: a few thousand hops.
  sim.run_until(sim::Time(0) + sim::Duration::millis(2));
  const std::uint64_t frames_before = ab.a_to_b().frames_sent();
  const std::uint64_t before = allocs();
  sim.run_until(sim::Time(0) + sim::Duration::millis(12));
  EXPECT_EQ(allocs() - before, 0u);
  EXPECT_GT(ab.a_to_b().frames_sent(), frames_before + 100)
      << "the loop must actually have forwarded frames";
}

TEST(AllocCount, RouterForwardingSteadyStateStaysUnderBudget) {
  // The full link->PFE->link path cannot be allocation-free today: each
  // packet clones a per-packet PpeProgram (unique_ptr) and opens a
  // reorder-map ticket. This pins the steady-state budget so regressions
  // (or a future fix dropping it to zero) are visible.
  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 2);
  const auto nh = router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
  router.forwarding().add_route(net::Ipv4Addr::from_octets(0, 0, 0, 0), 0, nh);
  int delivered = 0;
  router.attach_port_sink(1, [&delivered](net::PacketPtr) { ++delivered; });
  const std::vector<std::uint8_t> payload(256, 0x11);
  auto inject = [&](int n) {
    for (int i = 0; i < n; ++i) {
      router.receive(make_test_packet(payload), 0);
    }
    sim.run();
  };
  inject(256);  // warm-up
  const int warm_delivered = delivered;
  const std::uint64_t before = allocs();
  inject(1024);
  const std::uint64_t per_packet = (allocs() - before) / 1024;
  EXPECT_EQ(delivered - warm_delivered, 1024);
  EXPECT_LE(per_packet, 12u)
      << "per-packet allocation budget regressed: " << per_packet;
}

}  // namespace
