// src/cluster/: declarative multi-rack topologies and the hierarchical
// aggregation tree (paper §4 cross-device aggregation, generalized from
// the hand-wired two-router test into a first-class subsystem).
#include <gtest/gtest.h>

#include <sstream>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "trioml/addressing.hpp"
#include "trioml/wire_format.hpp"

namespace {

using namespace cluster;

TEST(ClusterSpecTest, ValidationRejectsUnbuildableSpecs) {
  ClusterSpec ok;
  EXPECT_NO_THROW(ok.validate());

  ClusterSpec s = ok;
  s.racks = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.workers_per_rack = 65;  // leaf fast-path source mask is 64 bits
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.racks = 65;  // spine fast-path source mask is 64 bits
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.racks = 64;
  s.workers_per_rack = 4;  // 256 workers > uint8 contributor count
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.window = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.grads_per_packet = trioml::kMaxGradsPerPacket + 1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.fabric_link.loss = 1.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = ok;
  s.host_link.gbps = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ClusterTreeTest, ConstructionRules) {
  ClusterSpec spec;
  spec.racks = 4;
  spec.workers_per_rack = 3;
  const AggregationTree tree = build_aggregation_tree(spec);

  ASSERT_EQ(tree.racks.size(), 4u);
  EXPECT_EQ(tree.expected_sources, 12);
  EXPECT_EQ(tree.spine_ip, trioml::spine_ip());
  EXPECT_EQ(tree.result_group, trioml::result_group());
  ASSERT_EQ(tree.spine_src_ids.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    const RackNode& node = tree.racks[static_cast<std::size_t>(r)];
    EXPECT_EQ(node.rack, r);
    // Source ids are rack-local (unique per aggregation level, so the
    // tree scales past 64 total workers).
    ASSERT_EQ(node.worker_src_ids.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(node.worker_src_ids[static_cast<std::size_t>(i)], i);
    }
    // Rack r reaches the spine as source r.
    EXPECT_EQ(node.uplink_src_id, r);
    EXPECT_EQ(tree.spine_src_ids[static_cast<std::size_t>(r)], r);
    EXPECT_EQ(node.agg_ip, trioml::aggregator_ip(r));
  }
}

// The acceptance bar: a >= 4-rack, >= 16-worker cluster completes an
// allreduce through the two-level tree with results bit-identical to the
// flat single-router Testbed aggregating the same worker gradients
// (integer gradient addition is associative).
TEST(ClusterTest, FourRackSixteenWorkerBitIdenticalToTestbed) {
  ClusterSpec spec;
  spec.racks = 4;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 256;
  spec.slab_pool = 256;
  const auto grads = patterned_gradients(spec.total_workers(), 256 * 3);

  Cluster cl(spec);
  const AllreduceRun run = run_allreduce(cl, grads);
  ASSERT_EQ(run.finished, 16);
  for (const auto& r : run.results) {
    EXPECT_EQ(r.degraded_blocks, 0u);
    ASSERT_EQ(r.grads.size(), 256u * 3u);
  }

  const auto baseline = testbed_baseline(spec, grads);
  EXPECT_TRUE(bit_identical(run.results, baseline));

  // Each leaf completed its rack's blocks, the spine one block per
  // gradient block, and the trunks carried leaf results, not worker
  // streams: 3 result packets up per rack (plus slack).
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cl.leaf_app(r).stats().blocks_completed, 3u) << "rack " << r;
    EXPECT_LE(cl.fabric_link(r).a_to_b().frames_sent(), 5u) << "rack " << r;
  }
  EXPECT_EQ(cl.spine_app().stats().blocks_completed, 3u);
  EXPECT_GT(run.goodput_gbps(), 0.0);
}

// A sanity check that the cluster really is spread across devices: every
// leaf router and the spine forward packets.
TEST(ClusterTest, TrafficTraversesEveryRouter) {
  ClusterSpec spec;
  spec.racks = 3;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 64;
  Cluster cl(spec);
  const auto run =
      run_allreduce(cl, patterned_gradients(cl.num_workers(), 64));
  ASSERT_EQ(run.finished, 6);
  for (int r = 0; r < 3; ++r) {
    EXPECT_GT(cl.leaf(r).packets_received(), 0u);
    EXPECT_GT(cl.leaf(r).packets_transmitted(), 0u);
  }
  EXPECT_EQ(cl.spine().packets_received(), 3u);   // one partial per rack
  EXPECT_EQ(cl.spine().packets_transmitted(), 3u);  // one replica per rack
}

// Straggler detection across the leaf routers (paper §5 on a multi-rack
// topology): a silent worker in rack 1 must not stall the cluster — the
// rack's leaf ages the block, sends a degraded partial Result up, and the
// three live workers get a result rescaled by the contributor count.
TEST(ClusterTest, StragglerDetectionAcrossLeafRouters) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 64;
  Cluster cl(spec);
  for (int r = 0; r < 2; ++r) {
    cl.leaf_app(r).start_straggler_detection(/*threads=*/10,
                                             sim::Duration::millis(1));
  }

  int done = 0;
  std::vector<trioml::AllreduceResult> results(4);
  for (int w = 0; w < 3; ++w) {  // worker 3 (rack 1) never contributes
    std::vector<std::uint32_t> g(128, static_cast<std::uint32_t>(w + 1));
    cl.worker(w).start_allreduce(
        std::move(g), 1, [&results, &done, w](trioml::AllreduceResult r) {
          results[static_cast<std::size_t>(w)] = std::move(r);
          ++done;
        });
  }
  cl.simulator().run_until(sim::Time(sim::Duration::millis(20).ns()));
  cl.stop_straggler_detection();

  ASSERT_EQ(done, 3);
  // Sum over contributors {1, 2, 3} = 6, rescaled by src_cnt = 3.
  const float expect = trioml::dequantize(6) / 3.0f;
  for (int w = 0; w < 3; ++w) {
    const auto& r = results[static_cast<std::size_t>(w)];
    EXPECT_EQ(r.degraded_blocks, 1u) << "worker " << w;
    for (float v : r.grads) ASSERT_NEAR(v, expect, 1e-6f) << "worker " << w;
  }
  EXPECT_EQ(cl.leaf_app(1).stats().blocks_aged, 1u);
}

// The mltrain Slow-Worker-Pattern straggler generator drives cluster
// workers unmodified through inject_stragglers.
TEST(ClusterTest, SlowWorkerPatternInjection) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 64;
  Cluster cl(spec);
  mltrain::SlowWorkerPattern pattern(/*probability=*/1.0, cl.num_workers(),
                                     /*typical_iteration_ms=*/0.05,
                                     /*seed=*/7);
  const auto delays = inject_stragglers(cl, pattern);
  ASSERT_EQ(delays.size(), 4u);
  double total = 0;
  for (double d : delays) total += d;
  EXPECT_GT(total, 0.0);  // p = 1: at least one delay point fired

  // The allreduce still completes exactly; stalls only delay it.
  const auto run = run_allreduce(cl, patterned_gradients(4, 64));
  EXPECT_EQ(run.finished, 4);
  const auto baseline = testbed_baseline(spec, patterned_gradients(4, 64));
  EXPECT_TRUE(bit_identical(run.results, baseline));
}

// Cluster telemetry: per-tier link counters (shared registry cells =
// tier totals), per-router metric scopes, and the per-rack trace process
// rows with sampled counter tracks (docs/telemetry.md).
TEST(ClusterTest, TelemetryTiersScopesAndRackTraceRows) {
  telemetry::Telemetry telem(/*metrics=*/true, /*trace=*/true);
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 64;
  spec.telemetry = &telem;
  Cluster cl(spec);

  cl.start_trace_sampling(sim::Duration::micros(20));
  const auto run =
      run_allreduce(cl, patterned_gradients(4, 64), /*gen_id=*/1,
                    sim::Time(sim::Duration::millis(5).ns()));
  cl.stop_trace_sampling();
  ASSERT_EQ(run.finished, 4);

  // Per-tier totals equal the sum of the member links' own counters.
  std::uint64_t host_up = 0, fabric_up = 0, fabric_down = 0;
  for (int w = 0; w < 4; ++w) host_up += cl.link(w).a_to_b().frames_sent();
  for (int r = 0; r < 2; ++r) {
    fabric_up += cl.fabric_link(r).a_to_b().frames_sent();
    fabric_down += cl.fabric_link(r).b_to_a().frames_sent();
  }
  EXPECT_EQ(telem.metrics.counter("cluster.tier.host.up.tx_frames").value(),
            host_up);
  EXPECT_EQ(telem.metrics.counter("cluster.tier.fabric.up.tx_frames").value(),
            fabric_up);
  EXPECT_EQ(
      telem.metrics.counter("cluster.tier.fabric.down.tx_frames").value(),
      fabric_down);
  EXPECT_EQ(telem.metrics.counter("cluster.tier.fabric.up.drops").value(), 0u);

  // Per-router telemetry scopes keep every router's PFE metrics distinct.
  EXPECT_GT(telem.metrics.counter("rack0.pfe0.packets_in").value(), 0u);
  EXPECT_GT(telem.metrics.counter("rack1.pfe0.packets_in").value(), 0u);
  EXPECT_GT(telem.metrics.counter("spine.pfe0.packets_in").value(), 0u);
  EXPECT_GT(telem.metrics.counter("rack0.router.packets_received").value(),
            0u);

  // The trace carries per-router PFE processes plus the per-rack summary
  // rows with their sampled counter tracks.
  std::ostringstream os;
  telem.tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rack0.pfe0\""), std::string::npos);
  EXPECT_NE(json.find("\"rack1.pfe0\""), std::string::npos);
  EXPECT_NE(json.find("\"spine.pfe0\""), std::string::npos);
  EXPECT_NE(json.find("\"rack0\""), std::string::npos);
  EXPECT_NE(json.find("\"rack1\""), std::string::npos);
  EXPECT_NE(json.find("\"blocks_completed\""), std::string::npos);
  EXPECT_NE(json.find("\"uplink\""), std::string::npos);
}

}  // namespace
