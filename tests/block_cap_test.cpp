// Tests for the job record's block_cnt_max enforcement (Fig 17: "control
// memory sharing across jobs by capping the maximum number of concurrent
// aggregation blocks") and for multiple concurrent jobs on one PFE
// (Fig 9's scenario).
#include <gtest/gtest.h>

#include "trioml/testbed.hpp"

namespace {

using namespace trioml;

TEST(BlockCap, OverCapPacketsDroppedAndRecoveredByRetransmit) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  cfg.window = 16;  // offered concurrency far above the cap
  Testbed tb(cfg);
  // Re-configure the job with a tiny cap by removing and re-adding it.
  tb.app(0).remove_job(cfg.job_id);
  TrioMlApp::JobSetup job;
  job.job_id = cfg.job_id;
  job.src_ids = {0, 1};
  job.block_grad_max = 64;
  job.block_cnt_max = 2;  // at most two blocks in flight
  job.out_src = net::Ipv4Addr::from_octets(10, 0, 0, 254);
  job.out_dst = net::Ipv4Addr::from_octets(239, 0, 0, 1);
  job.out_nh = *tb.router().forwarding().lookup(
      net::Ipv4Addr::from_octets(239, 0, 0, 1));
  tb.app(0).configure_job(job);

  for (int w = 0; w < 2; ++w) {
    tb.worker(w).enable_retransmit(sim::Duration::millis(1));
  }
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> g(64 * 32, 1);  // 32 blocks through cap 2
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](AllreduceResult r) {
                                   ++done;
                                   EXPECT_EQ(r.degraded_blocks, 0u);
                                 });
  }
  tb.simulator().run_until(sim::Time(sim::Duration::seconds(1).ns()));
  EXPECT_EQ(done, 2) << "retransmission must drain the capped job";
  const auto& stats = tb.app(0).stats();
  EXPECT_EQ(stats.blocks_completed, 32u);
  EXPECT_GT(stats.blocks_capped, 0u) << "the cap must actually bite";
  // The active counter drained back to zero.
  EXPECT_EQ(tb.router().pfe(0).sms().peek_u32(
                tb.app(0).job_active_counter_addr(cfg.job_id)),
            0u);
}

TEST(BlockCap, GenerousCapNeverBites) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  cfg.window = 16;
  Testbed tb(cfg);  // default cap 4095
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> g(64 * 32, 1);
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](AllreduceResult) { ++done; });
  }
  tb.simulator().run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(tb.app(0).stats().blocks_capped, 0u);
}

TEST(BlockCap, AgedBlocksReleaseTheirSlots) {
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  cfg.window = 4;
  Testbed tb(cfg);
  tb.start_straggler_detection(10, sim::Duration::millis(2));
  // Worker 1 never sends: every block ages out.
  int done = 0;
  std::vector<std::uint32_t> g(64 * 8, 1);
  tb.worker(0).start_allreduce(std::move(g), 1,
                               [&](AllreduceResult r) {
                                 ++done;
                                 EXPECT_EQ(r.degraded_blocks, 8u);
                               });
  tb.simulator().run_until(sim::Time(sim::Duration::millis(100).ns()));
  EXPECT_EQ(done, 1);
  EXPECT_EQ(tb.router().pfe(0).sms().peek_u32(
                tb.app(0).job_active_counter_addr(cfg.job_id)),
            0u)
      << "aging must release active-block slots";
}

// ---------------------------------------------------------------------------
// Multiple concurrent jobs (Fig 9): two jobs with disjoint worker sets
// share the PFE, the hash table and the slab pool without interference.

TEST(MultiJob, TwoJobsAggregateIndependently) {
  // Build a custom two-job rig on one router: job 1 = workers {0,1},
  // job 2 = workers {2,3} with its own multicast group.
  TestbedConfig cfg;
  cfg.num_workers = 4;
  cfg.grads_per_packet = 128;
  Testbed tb(cfg);
  auto& fwd = tb.router().forwarding();

  // Default testbed job 1 spans all four workers; re-scope it to {0,1}
  // and add job 2 = {2,3}.
  tb.app(0).remove_job(1);
  // Job 2's result group multicasts to two spare router ports (6 and 7)
  // where the test taps the traffic with sinks (ports 0-3 have worker
  // links attached).
  const auto group2 = net::Ipv4Addr::from_octets(239, 0, 0, 2);
  std::uint32_t group2_nh = 0;
  for (int port : {6, 7}) {
    const auto member = fwd.add_nexthop(trio::NexthopUnicast{
        port, {0x02, 0, 0, 0, 1, static_cast<std::uint8_t>(port)}});
    group2_nh = fwd.join_group(group2, member);
  }

  TrioMlApp::JobSetup j1;
  j1.job_id = 1;
  j1.src_ids = {0, 1};
  j1.block_grad_max = 128;
  j1.out_src = net::Ipv4Addr::from_octets(10, 0, 0, 254);
  j1.out_dst = net::Ipv4Addr::from_octets(239, 0, 0, 1);
  j1.out_nh = *fwd.lookup(net::Ipv4Addr::from_octets(239, 0, 0, 1));
  tb.app(0).configure_job(j1);

  TrioMlApp::JobSetup j2 = j1;
  j2.job_id = 2;
  j2.src_ids = {2, 3};
  j2.out_dst = group2;
  j2.out_nh = group2_nh;
  tb.app(0).configure_job(j2);

  // Workers 2 and 3 must speak job 2: rebuild their configs via the
  // public API (src ids already 2/3; only the job id differs).
  // The Testbed's workers are fixed to job 1, so drive job 2 with raw
  // frames and a port sink instead.
  int done = 0;
  for (int w = 0; w < 2; ++w) {
    std::vector<std::uint32_t> g(128 * 4, static_cast<std::uint32_t>(w + 1));
    tb.worker(w).start_allreduce(std::move(g), 1,
                                 [&](AllreduceResult r) {
                                   ++done;
                                   for (float v : r.grads) {
                                     EXPECT_NEAR(v, dequantize(3) / 4.0f,
                                                 1e-6f);
                                   }
                                 });
  }
  // Job 2 traffic: 4 blocks from each of sources 2 and 3.
  int job2_results = 0;
  std::vector<float> job2_first_grad;
  tb.router().attach_port_sink(6, [&](net::PacketPtr pkt) {
    const auto hdr = TrioMlHeader::parse(pkt->frame(), kTrioMlHdrOff);
    if (hdr.job_id == 2) {
      ++job2_results;
      job2_first_grad.push_back(
          dequantize(static_cast<std::int32_t>(read_gradient(pkt->frame(), 0))));
    }
  });
  for (std::uint32_t b = 0; b < 4; ++b) {
    for (std::uint8_t src : {std::uint8_t{2}, std::uint8_t{3}}) {
      TrioMlHeader hdr;
      hdr.job_id = 2;
      hdr.block_id = b;
      hdr.src_id = src;
      hdr.src_cnt = 1;
      std::vector<std::uint32_t> grads(128, 7);
      auto frame = build_aggregation_frame(
          {2, 0, 0, 0, 1, src}, {2, 0, 0, 0, 0, 0xfe},
          net::Ipv4Addr::from_octets(10, 0, 0, src),
          net::Ipv4Addr::from_octets(10, 0, 0, 254), 20000, hdr, grads);
      tb.router().receive(net::Packet::make(std::move(frame)),
                          static_cast<int>(src));
    }
  }
  tb.simulator().run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(job2_results, 4);  // one result per block on port 6
  for (float v : job2_first_grad) {
    EXPECT_NEAR(v, dequantize(14), 1e-6f);  // 7 + 7 summed in-network
  }
  EXPECT_EQ(tb.app(0).stats().blocks_completed, 4u + 4u);

  // Note on the expectation above: worker 0/1's result divides by
  // expected_sources=4 (testbed default), hence dequantize(3)/4.
}

}  // namespace
