// Loss recovery on cluster fabric links (paper §4: "the aggregator
// recognises duplicate packets by source id", §6.1 optional 1 ms
// retransmission). Workers run with retransmission enabled while drops
// are injected on inter-rack links; the allreduce must still converge
// with correctly rescaled results.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "trioml/wire_format.hpp"

namespace {

using namespace cluster;

// Drops on the uplink (leaf -> spine partial Results): every worker's
// retransmit rebuilds the rack's block at the leaf, the fresh partial
// completes the spine block, and duplicates from racks whose partial DID
// arrive are absorbed by the source mask. Recovery is lossless, so the
// results stay bit-identical to a flat lossless Testbed run.
TEST(ClusterLoss, UplinkDropsRecoverBitIdentical) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 256;
  Cluster cl(spec);
  for (int r = 0; r < 2; ++r) {
    // a_to_b is the leaf -> spine direction only; results coming back
    // down are untouched.
    cl.fabric_link(r).a_to_b().set_loss(0.5, 91 + std::uint64_t(r));
  }
  for (int w = 0; w < 4; ++w) {
    cl.worker(w).enable_retransmit(sim::Duration::micros(200));
  }

  const auto grads = patterned_gradients(4, 128 * 8);
  const auto run = run_allreduce(cl, grads, /*gen_id=*/1,
                                 sim::Time(sim::Duration::millis(100).ns()));
  ASSERT_EQ(run.finished, 4);
  for (const auto& r : run.results) EXPECT_EQ(r.degraded_blocks, 0u);
  EXPECT_TRUE(bit_identical(run.results, testbed_baseline(spec, grads)));

  std::uint64_t dropped = 0, retransmitted = 0;
  for (int r = 0; r < 2; ++r) {
    dropped += cl.fabric_link(r).a_to_b().frames_dropped();
  }
  for (int w = 0; w < 4; ++w) {
    retransmitted += cl.worker(w).retransmissions();
  }
  EXPECT_GT(dropped, 0u);        // the loss model actually fired
  EXPECT_GT(retransmitted, 0u);  // and retransmission recovered it
}

// Drops on the downlink (the spine's final-result multicast toward rack
// 0): the rack's workers retransmit, the leaf rebuilds and re-sends its
// partial, but the spine has already freed the block — the re-created
// spine block only ever holds rack 0's source bit, so recovery needs
// straggler aging (§5): the aged Result carries src_cnt = 2 and the
// workers rescale by the contributor count.
//
// The retransmit period must exceed the aging window (2x the detection
// timeout): the hash table ages by check-and-clear REF bits, so every
// duplicate retransmit re-references the orphaned block and a
// faster-than-aging retransmitter keeps it alive forever (the paper pairs
// 1 ms retransmission with a 10 ms block expiry for the same reason).
TEST(ClusterLoss, DownlinkDropsAgeOutWithRescaledResults) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 256;
  Cluster cl(spec);
  cl.fabric_link(0).b_to_a().set_loss(0.5, 1234);
  for (int w = 0; w < 4; ++w) {
    cl.worker(w).enable_retransmit(sim::Duration::millis(5));
  }
  cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));

  int done = 0;
  std::vector<trioml::AllreduceResult> results(4);
  for (int w = 0; w < 4; ++w) {
    std::vector<std::uint32_t> g(128 * 4, static_cast<std::uint32_t>(w + 1));
    cl.worker(w).start_allreduce(
        std::move(g), 1, [&results, &done, w](trioml::AllreduceResult r) {
          results[static_cast<std::size_t>(w)] = std::move(r);
          ++done;
        });
  }
  cl.simulator().run_until(sim::Time(sim::Duration::millis(100).ns()));
  cl.stop_straggler_detection();

  ASSERT_EQ(done, 4);
  EXPECT_GT(cl.fabric_link(0).b_to_a().frames_dropped(), 0u);
  EXPECT_GT(cl.spine_app().stats().blocks_aged, 0u);

  // Rack 1's downlink is clean: its workers always see the first, full
  // multicast — sum 1+2+3+4 = 10 over 4 sources.
  const float full = trioml::dequantize(10) / 4.0f;
  for (int w = 2; w < 4; ++w) {
    EXPECT_EQ(results[std::size_t(w)].degraded_blocks, 0u) << "worker " << w;
    for (float v : results[std::size_t(w)].grads) {
      ASSERT_NEAR(v, full, 1e-6f) << "worker " << w;
    }
  }
  // Rack 0 lost some result deliveries; those blocks come back via the
  // aged spine block holding only rack 0's partial — sum 1+2 = 3 rescaled
  // by src_cnt = 2. Every block is either full or correctly rescaled.
  const float rescaled = trioml::dequantize(3) / 2.0f;
  std::uint64_t degraded = 0;
  for (int w = 0; w < 2; ++w) {
    degraded += results[std::size_t(w)].degraded_blocks;
    for (float v : results[std::size_t(w)].grads) {
      ASSERT_TRUE(std::abs(v - full) < 1e-6f || std::abs(v - rescaled) < 1e-6f)
          << "worker " << w << " value " << v;
    }
  }
  EXPECT_GT(degraded, 0u);  // the lossy downlink really exercised aging
}

// Declarative loss on the host tier (ClusterSpec.host_link.loss), both
// directions: retransmission repairs dropped worker packets, aging at
// both tree levels repairs dropped result deliveries.
TEST(ClusterLoss, SpecDeclaredHostLossStillConverges) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 256;
  spec.host_link.loss = 0.2;
  spec.host_link.loss_seed = 77;
  Cluster cl(spec);
  for (int w = 0; w < 4; ++w) {
    cl.worker(w).enable_retransmit(sim::Duration::millis(5));
  }
  cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));

  const auto run = run_allreduce(cl, patterned_gradients(4, 128 * 4),
                                 /*gen_id=*/1,
                                 sim::Time(sim::Duration::millis(300).ns()));
  cl.stop_straggler_detection();
  ASSERT_EQ(run.finished, 4);
  std::uint64_t dropped = 0;
  for (int w = 0; w < 4; ++w) {
    dropped += cl.link(w).a_to_b().frames_dropped() +
               cl.link(w).b_to_a().frames_dropped();
  }
  EXPECT_GT(dropped, 0u);
  for (const auto& r : run.results) {
    ASSERT_EQ(r.grads.size(), 128u * 4u);
    for (float v : r.grads) {
      ASSERT_GT(v, 0.0f);  // every recovered value is a real partial mean
    }
  }
}

}  // namespace
