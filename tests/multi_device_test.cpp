// Cross-DEVICE hierarchical aggregation (paper §4): "Hierarchical
// aggregation can be extended to work across multiple devices by setting
// the destination IP of the Result packet to the IP address of the
// next-level aggregator and relying on IP forwarding to unicast the
// packet. The top-level aggregator will, of course, multicast the final
// result back to the servers."
//
// Originally this test hand-wired a two-router topology; it now builds
// the same shape declaratively through cluster::ClusterSpec/Cluster —
// two racks of two workers behind leaf aggregators feeding a spine:
//
//   w0, w1 ── rack0 leaf ──┐
//                          ├── spine (top aggregator)
//   w2, w3 ── rack1 leaf ──┘
//
// Each leaf aggregates its rack and unicasts partial Results over the
// trunk to the spine, which aggregates one source per rack and
// multicasts the final result back through the leaves to all four
// workers. The golden assertions of the hand-wired version are kept as a
// regression check on the cluster builder.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "trioml/wire_format.hpp"

namespace {

using namespace cluster;

TEST(MultiDevice, TwoRackHierarchyAggregatesAndMulticasts) {
  ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.slab_pool = 64;
  spec.grads_per_packet = 128;
  spec.window = 4;
  spec.host_link.latency = sim::Duration::micros(1);
  spec.fabric_link.latency = sim::Duration::micros(2);
  Cluster cl(spec);

  // --- Allreduce: worker i contributes (i+1) everywhere ----------------
  int done = 0;
  std::vector<trioml::AllreduceResult> results(4);
  for (int i = 0; i < 4; ++i) {
    std::vector<std::uint32_t> g(128 * 8, static_cast<std::uint32_t>(i + 1));
    cl.worker(i).start_allreduce(
        std::move(g), 1, [&, i](trioml::AllreduceResult r) {
          results[static_cast<std::size_t>(i)] = std::move(r);
          ++done;
        });
  }
  cl.simulator().run();

  ASSERT_EQ(done, 4);
  // Sum = 1+2+3+4 = 10, averaged over the 4 expected sources.
  for (int i = 0; i < 4; ++i) {
    const auto& r = results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.degraded_blocks, 0u) << "worker " << i;
    for (float v : r.grads) {
      ASSERT_NEAR(v, trioml::dequantize(10) / 4.0f, 1e-6f) << "worker " << i;
    }
  }
  // Every aggregation level saw all 8 blocks exactly once.
  EXPECT_EQ(cl.leaf_app(0).stats().blocks_completed, 8u);
  EXPECT_EQ(cl.leaf_app(1).stats().blocks_completed, 8u);
  EXPECT_EQ(cl.spine_app().stats().blocks_completed, 8u);
  // The leaves reduced the trunk traffic: one result stream up instead of
  // two worker streams.
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(cl.fabric_link(r).a_to_b().frames_sent(), 0u) << "rack " << r;
    EXPECT_LE(cl.fabric_link(r).a_to_b().frames_sent(), 8u + 2u)
        << "rack " << r;
  }
}

}  // namespace
