// Cross-DEVICE hierarchical aggregation (paper §4): "Hierarchical
// aggregation can be extended to work across multiple devices by setting
// the destination IP of the Result packet to the IP address of the
// next-level aggregator and relying on IP forwarding to unicast the
// packet. The top-level aggregator will, of course, multicast the final
// result back to the servers."
//
// Topology built here:
//
//   w0, w1 ── routerA (leaf aggregator) ──┐
//                                         ├── routerB (top aggregator)
//                        w2, w3 ──────────┘
//
// Router A aggregates workers 0-1 and unicasts its Result (src_id = 4)
// over the inter-router link to router B, which aggregates it together
// with workers 2-3 (src ids 2, 3) and multicasts the final result to a
// group spanning all four workers (A's members reached back through A's
// forwarding).
#include <gtest/gtest.h>

#include "trio/router.hpp"
#include "trioml/app.hpp"
#include "trioml/host.hpp"

namespace {

using namespace trioml;

net::MacAddr mac(int i) {
  return net::MacAddr{0x02, 0, 0, 0, 3, static_cast<std::uint8_t>(i)};
}

TEST(MultiDevice, TwoRouterHierarchyAggregatesAndMulticasts) {
  sim::Simulator sim;
  trio::Calibration cal;
  trio::Router router_a(sim, cal, 1, 4, "router-a");
  trio::Router router_b(sim, cal, 1, 4, "router-b");

  const auto a_ip = net::Ipv4Addr::from_string("10.1.0.254");
  const auto b_ip = net::Ipv4Addr::from_string("10.2.0.254");
  const auto group = net::Ipv4Addr::from_string("239.9.9.9");

  // Inter-router link: A port 3 <-> B port 3.
  net::Link trunk(sim, 100.0, sim::Duration::micros(2));
  trunk.attach(router_a, 3, router_b, 3);
  router_a.attach_port(3, trunk.a_to_b());
  router_b.attach_port(3, trunk.b_to_a());

  // Apps.
  TrioMlApp::Config small;
  small.slab_pool = 64;
  TrioMlApp app_a(router_a.pfe(0), small);
  TrioMlApp app_b(router_b.pfe(0), small);
  app_a.set_aggregation_address(a_ip);
  app_b.set_aggregation_address(b_ip);
  app_a.install();
  app_b.install();

  // --- Router A: leaf job over workers 0,1; result unicast to B -------
  auto& fwd_a = router_a.forwarding();
  const auto a_to_b_nh = fwd_a.add_nexthop(trio::NexthopUnicast{3, mac(99)});
  fwd_a.add_route(b_ip, 32, a_to_b_nh);
  {
    TrioMlApp::JobSetup job;
    job.job_id = 1;
    job.src_ids = {0, 1};
    job.block_grad_max = 128;
    job.out_src = a_ip;
    job.out_dst = b_ip;        // next-level aggregator's IP
    job.out_nh = a_to_b_nh;    // via IP forwarding over the trunk
    job.out_src_id = 4;        // A appears to B as source 4
    app_a.configure_job(job);
  }

  // --- Router B: top-level job over {A(=4), w2, w3}; result multicast --
  auto& fwd_b = router_b.forwarding();
  // Multicast members: local workers 2,3 on B's ports 0,1 plus the trunk
  // back toward A (A forwards the group onward to its local workers).
  std::uint32_t group_nh_b = 0;
  for (int port : {0, 1}) {
    group_nh_b = fwd_b.join_group(
        group, fwd_b.add_nexthop(trio::NexthopUnicast{port, mac(port + 2)}));
  }
  group_nh_b = fwd_b.join_group(
      group, fwd_b.add_nexthop(trio::NexthopUnicast{3, mac(98)}));
  {
    TrioMlApp::JobSetup job;
    job.job_id = 1;
    job.src_ids = {2, 3, 4};
    job.block_grad_max = 128;
    job.out_src = b_ip;
    job.out_dst = group;
    job.out_nh = group_nh_b;
    app_b.configure_job(job);
  }
  // Router A forwards the multicast group to its local workers.
  for (int port : {0, 1}) {
    fwd_a.join_group(group,
                     fwd_a.add_nexthop(trio::NexthopUnicast{port, mac(port)}));
  }

  // --- Workers ---------------------------------------------------------
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<TrioMlWorker>> workers;
  int done = 0;
  std::vector<AllreduceResult> results(4);
  for (int i = 0; i < 4; ++i) {
    trio::Router& attach_to = i < 2 ? router_a : router_b;
    const int port = i % 2;
    links.push_back(
        std::make_unique<net::Link>(sim, 100.0, sim::Duration::micros(1)));
    TrioMlWorker::Config wc;
    wc.job_id = 1;
    wc.src_id = static_cast<std::uint8_t>(i);
    wc.ip = net::Ipv4Addr::from_octets(10, static_cast<std::uint8_t>(i < 2 ? 1 : 2),
                                       0, static_cast<std::uint8_t>(i + 1));
    wc.mac = mac(i);
    wc.agg_ip = i < 2 ? a_ip : b_ip;
    wc.window = 4;
    wc.grads_per_packet = 128;
    wc.expected_sources = 4;
    workers.push_back(
        std::make_unique<TrioMlWorker>(sim, wc, links.back()->a_to_b()));
    links.back()->attach(*workers.back(), 0, attach_to, port);
    attach_to.attach_port(port, links.back()->b_to_a());
  }

  // --- Allreduce: worker i contributes (i+1) everywhere ----------------
  for (int i = 0; i < 4; ++i) {
    std::vector<std::uint32_t> g(128 * 8, static_cast<std::uint32_t>(i + 1));
    workers[static_cast<std::size_t>(i)]->start_allreduce(
        std::move(g), 1, [&, i](AllreduceResult r) {
          results[static_cast<std::size_t>(i)] = std::move(r);
          ++done;
        });
  }
  sim.run();

  ASSERT_EQ(done, 4);
  // Sum = 1+2+3+4 = 10, averaged over the 4 expected sources.
  for (int i = 0; i < 4; ++i) {
    const auto& r = results[static_cast<std::size_t>(i)];
    EXPECT_EQ(r.degraded_blocks, 0u) << "worker " << i;
    for (float v : r.grads) {
      ASSERT_NEAR(v, dequantize(10) / 4.0f, 1e-6f) << "worker " << i;
    }
  }
  EXPECT_EQ(app_a.stats().blocks_completed, 8u);
  EXPECT_EQ(app_b.stats().blocks_completed, 8u);
  // A's leaf results reduced the trunk traffic: one result stream up
  // instead of two worker streams.
  EXPECT_GT(trunk.a_to_b().frames_sent(), 0u);
  EXPECT_LE(trunk.a_to_b().frames_sent(), 8u + 2u);
}

}  // namespace
