// Remaining small-surface coverage: logging, PISA edge paths, router
// error handling, buffer append, event-id semantics.
#include <gtest/gtest.h>

#include "pisa/switch.hpp"
#include "sim/logging.hpp"
#include "trio/router.hpp"

namespace {

TEST(Logging, LevelGateHoldsAndRestores) {
  const auto prev = sim::log_level();
  sim::set_log_level(sim::LogLevel::kOff);
  EXPECT_EQ(sim::log_level(), sim::LogLevel::kOff);
  // With the gate closed this must be a no-op (nothing observable, but
  // must not crash and must not require a sink).
  sim::log(sim::LogLevel::kDebug, sim::Time(123), "quiet");
  sim::set_log_level(sim::LogLevel::kTrace);
  EXPECT_EQ(sim::log_level(), sim::LogLevel::kTrace);
  sim::log(sim::LogLevel::kTrace, sim::Time(456), "loud (stderr)");
  sim::set_log_level(prev);
}

TEST(EventId, DefaultIsInvalidAndCancelSafe) {
  sim::Simulator s;
  sim::EventId id;
  EXPECT_FALSE(id.valid());
  EXPECT_FALSE(s.cancel(id));  // cancelling nothing is harmless
}

TEST(Buffer, AppendGrowsAndPreserves) {
  net::Buffer b(2);
  b.set_u8(0, 0xaa);
  b.set_u8(1, 0xbb);
  const std::uint8_t extra[3] = {1, 2, 3};
  b.append(extra);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.u8(0), 0xaa);
  EXPECT_EQ(b.u8(4), 3);
}

TEST(PacketMeta, CarriesPortsAndIds) {
  net::Packet p{net::Buffer(64)};
  p.set_id(42);
  p.set_ingress_port(3);
  p.set_egress_port(5);
  p.set_flow_hash(0x1234);
  p.set_arrival_time(sim::Time(999));
  EXPECT_EQ(p.id(), 42u);
  EXPECT_EQ(p.ingress_port(), 3);
  EXPECT_EQ(p.egress_port(), 5);
  EXPECT_EQ(p.flow_hash(), 0x1234u);
  EXPECT_EQ(p.arrival_time(), sim::Time(999));
}

TEST(PisaEdge, ParserDropCountsNothingDownstream) {
  sim::Simulator sim;
  pisa::PipelineConfig cfg;
  cfg.stages = 2;
  pisa::Pipeline pipe(sim, cfg);
  int stage_runs = 0;
  int deparsed = 0;
  pipe.set_parser([](pisa::Phv&) { return false; });  // drop at parse
  pipe.stage(0).set_logic([&](pisa::Phv&, pisa::Stage&) { ++stage_runs; });
  pipe.set_deparser([&](pisa::Phv&&) { ++deparsed; });
  pipe.inject(net::Packet::make(net::Buffer(64)));
  sim.run();
  EXPECT_EQ(stage_runs, 0);
  EXPECT_EQ(deparsed, 0);
  EXPECT_EQ(pipe.packets_in(), 1u);
}

TEST(PisaEdge, StageAccessCounterTracksRmws) {
  pisa::Stage st(0);
  const int a = st.add_register_array(4);
  for (int i = 0; i < 5; ++i) {
    st.begin_traversal();
    st.stateful_rmw(a, 0, [](std::uint32_t v) { return v + 1; });
  }
  EXPECT_EQ(st.accesses(), 5u);
}

TEST(PisaEdge, DropMidPipelineSkipsRemainingStages) {
  sim::Simulator sim;
  pisa::PipelineConfig cfg;
  cfg.stages = 3;
  pisa::Pipeline pipe(sim, cfg);
  int later_runs = 0;
  pipe.set_parser([](pisa::Phv& phv) {
    phv.meta.assign(1, 0);
    return true;
  });
  pipe.stage(0).set_logic([](pisa::Phv& phv, pisa::Stage&) {
    phv.drop = true;
  });
  pipe.stage(1).set_logic([&](pisa::Phv&, pisa::Stage&) { ++later_runs; });
  pipe.inject(net::Packet::make(net::Buffer(64)));
  sim.run();
  EXPECT_EQ(later_runs, 0);
}

TEST(RouterEdge, BadPortsRejected) {
  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 2);
  EXPECT_THROW(router.receive(net::Packet::make(net::Buffer(64)), 7),
               std::out_of_range);
  EXPECT_THROW(router.receive(net::Packet::make(net::Buffer(64)), -1),
               std::out_of_range);
  net::LinkEndpoint ep(sim, 10.0, sim::Duration::zero());
  EXPECT_THROW(router.attach_port(9, ep), std::out_of_range);
}

TEST(RouterEdge, UnattachedEgressPortCountsDiscard) {
  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 2);
  const auto nh = router.forwarding().add_nexthop(
      trio::NexthopUnicast{1, {}});  // port 1 has no link/sink
  router.forwarding().add_route(net::Ipv4Addr::from_string("0.0.0.0"), 0, nh);
  std::vector<std::uint8_t> payload(32, 0);
  router.receive(net::Packet::make(net::build_udp_frame(
                     {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
                     net::Ipv4Addr::from_octets(1, 1, 1, 1),
                     net::Ipv4Addr::from_octets(2, 2, 2, 2), 1, 2, payload)),
                 0);
  sim.run();
  EXPECT_EQ(router.packets_discarded(), 1u);
}

TEST(RouterEdge, ZeroPfesRejected) {
  sim::Simulator sim;
  EXPECT_THROW(trio::Router(sim, trio::Calibration{}, 0, 2),
               std::invalid_argument);
  EXPECT_THROW(trio::Router(sim, trio::Calibration{}, 1, 0),
               std::invalid_argument);
}

TEST(RouterEdge, NamePropagates) {
  sim::Simulator sim;
  trio::Router router(sim, trio::Calibration{}, 1, 2, "edge-router-7");
  EXPECT_EQ(router.name(), "edge-router-7");
}

}  // namespace
