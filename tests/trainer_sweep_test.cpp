// Parameterized invariant sweeps over the training model: for every
// (model, straggle probability) combination the paper's qualitative
// ordering must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mltrain/model.hpp"
#include "mltrain/trainer.hpp"

namespace {

using namespace mltrain;

using SweepParams = std::tuple<std::string, double>;  // model, p

class TrainerSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(TrainerSweep, BackendOrderingHolds) {
  const auto& [model_name, p] = GetParam();
  const auto& model = model_by_name(model_name);
  TrainConfig cfg;
  cfg.straggle_probability = p;
  cfg.seed = 11;

  const double ideal = Trainer(model, Backend::kIdeal, cfg)
                           .run_iterations(400)
                           .mean_iteration_ms;
  const double trio = Trainer(model, Backend::kTrioML, cfg)
                          .run_iterations(400)
                          .mean_iteration_ms;
  const double sml = Trainer(model, Backend::kSwitchML, cfg)
                         .run_iterations(400)
                         .mean_iteration_ms;

  // Ideal <= Trio-ML <= SwitchML at every probability (the Fig 13
  // ordering), with a tolerance for the small comm-rate differences.
  EXPECT_LE(ideal, trio * 1.01) << "p=" << p;
  EXPECT_LE(trio, sml * 1.01) << "p=" << p;
  // Trio-ML never exceeds Ideal by more than the detection budget.
  const double detect_budget_ms =
      3 * 2 * cfg.straggler_timeout_ms + 0.12 * ideal;
  EXPECT_LE(trio, ideal + detect_budget_ms) << "p=" << p;
}

TEST_P(TrainerSweep, DegradedFractionTracksProbability) {
  const auto& [model_name, p] = GetParam();
  const auto& model = model_by_name(model_name);
  TrainConfig cfg;
  cfg.straggle_probability = p;
  cfg.seed = 5;
  const auto res =
      Trainer(model, Backend::kTrioML, cfg).run_iterations(600);
  // P(iteration degraded) = P(at least one event whose sleep outlives
  // detection) ~= 1 - (1-p)^3 since sleeps (>= 0.5x iteration time)
  // vastly exceed the 10-20 ms detection window.
  const double expected = 1.0 - std::pow(1.0 - p, 3);
  EXPECT_NEAR(res.degraded_fraction, expected, 0.07) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrainerSweep,
    ::testing::Combine(
        ::testing::Values(std::string("ResNet50"), std::string("DenseNet161"),
                          std::string("VGG11")),
        ::testing::Values(0.0, 0.04, 0.08, 0.16)),
    [](const ::testing::TestParamInfo<SweepParams>& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(TrainerEdge, UnreachableTargetReportsMinusOne) {
  TrainConfig cfg;
  Trainer t(model_by_name("ResNet50"), Backend::kIdeal, cfg);
  const auto res = t.train_to_accuracy(/*target=*/99.9, /*max_minutes=*/1);
  EXPECT_EQ(res.time_to_target_minutes, -1);
  EXPECT_GT(res.iterations, 0u);
}

TEST(TrainerEdge, IdealNeverDegrades) {
  TrainConfig cfg;
  cfg.straggle_probability = 0.5;
  Trainer t(model_by_name("VGG11"), Backend::kIdeal, cfg);
  EXPECT_EQ(t.run_iterations(200).degraded_fraction, 0.0);
}

TEST(TrainerEdge, TypicalIterationMatchesComputePlusComm) {
  TrainConfig cfg;
  const auto& m = model_by_name("DenseNet161");
  Trainer t(m, Backend::kIdeal, cfg);
  const double expected =
      m.compute_ms +
      Trainer::ring_allreduce_ms(m.size_mb * 1e6, cfg.num_workers,
                                 cfg.rdma_ring_gbps);
  EXPECT_NEAR(t.typical_iteration_ms(), expected, 1e-9);
}

}  // namespace
