// Fault-injection subsystem (src/faults/, docs/faults.md).
//
// Covers the DSL parser, golden deterministic replay (same schedule +
// same seeds => bit-identical allreduce results and equal fault-log
// digests), host-crash recovery with excluded-worker semantics on an
// 8-worker cluster, burst loss exercising the hardened retransmit path
// (retry budgets + backoff counters visible in the metrics snapshot),
// and aggregation-bucket state loss recovered by retransmission.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "trioml/testbed.hpp"

namespace {

using namespace faults;

// FNV-1a over each result's gradient bits: bit-identical results <=>
// equal digests (same idiom as determinism_test.cpp).
std::uint64_t digest_results(
    const std::vector<trioml::AllreduceResult>& results) {
  std::uint64_t h = 1469598103934665603ull;
  const auto eat = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& r : results) {
    eat(r.grads.size());
    eat(r.degraded_blocks);
    for (float g : r.grads) {
      std::uint32_t bits;
      static_assert(sizeof bits == sizeof g);
      __builtin_memcpy(&bits, &g, sizeof bits);
      eat(bits);
    }
  }
  return h;
}

TEST(FaultSchedule, ParsesTheDslGrammar) {
  const FaultSchedule s = FaultSchedule::parse(R"(
# full grammar tour
at 10ms flap host:3 for 2ms
at 0ms  burst host:* p_enter=0.02 p_exit=0.3 for 5ms
at 1ms  loss fabric:0 0.05 for 3ms
at 2ms  corrupt host:1.up 0.01
at 4ms  stall leaf:0 for 500us
at 3ms  crash worker:5
at 6ms  restart worker:5
at 5ms  drop-buckets spine job=2
at 7ms  down fabric:1.down
at 8ms  up fabric:1.down
)");
  ASSERT_EQ(s.size(), 10u);
  const auto& e = s.events();
  EXPECT_EQ(e[0].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(e[0].target.kind, TargetKind::kHostLink);
  EXPECT_EQ(e[0].target.index, 3);
  EXPECT_EQ(e[0].at.ns(), sim::Duration::millis(10).ns());
  EXPECT_EQ(e[0].duration.ns(), sim::Duration::millis(2).ns());
  EXPECT_EQ(e[1].target.index, Target::kAll);
  EXPECT_DOUBLE_EQ(e[1].burst.p_enter, 0.02);
  EXPECT_DOUBLE_EQ(e[1].burst.p_exit, 0.3);
  EXPECT_EQ(e[2].kind, FaultKind::kIidLoss);
  EXPECT_DOUBLE_EQ(e[2].probability, 0.05);
  EXPECT_EQ(e[3].kind, FaultKind::kCorrupt);
  EXPECT_EQ(e[3].target.dir, LinkDir::kUp);
  EXPECT_EQ(e[3].duration.ns(), 0);  // no window = permanent
  EXPECT_EQ(e[4].kind, FaultKind::kRouterStall);
  EXPECT_EQ(e[4].target.kind, TargetKind::kLeafRouter);
  EXPECT_EQ(e[5].kind, FaultKind::kHostCrash);
  EXPECT_EQ(e[6].kind, FaultKind::kHostRestart);
  EXPECT_EQ(e[7].kind, FaultKind::kBucketDrop);
  EXPECT_EQ(e[7].target.kind, TargetKind::kSpineAgg);
  EXPECT_EQ(e[7].job_id, 2);
  EXPECT_EQ(e[8].kind, FaultKind::kLinkDown);
  EXPECT_EQ(e[8].target.dir, LinkDir::kDown);
  EXPECT_EQ(e[9].kind, FaultKind::kLinkUp);
}

TEST(FaultSchedule, RejectsMalformedLines) {
  EXPECT_THROW(FaultSchedule::parse("at 1ms flap host:0"),
               std::invalid_argument);  // flap needs `for`
  EXPECT_THROW(FaultSchedule::parse("at 1ms crash host:0"),
               std::invalid_argument);  // crash needs a worker
  EXPECT_THROW(FaultSchedule::parse("at 1ms burst worker:0"),
               std::invalid_argument);  // burst needs a link
  EXPECT_THROW(FaultSchedule::parse("flap host:0 for 1ms"),
               std::invalid_argument);  // missing `at <time>`
  EXPECT_THROW(FaultSchedule::parse("at 1parsec flap host:0 for 1ms"),
               std::invalid_argument);  // bad unit
  EXPECT_THROW(FaultSchedule::parse("at 1ms wobble host:0"),
               std::invalid_argument);  // unknown verb
}

TEST(FaultSchedule, ParsesKillAndRevive) {
  const FaultSchedule s = FaultSchedule::parse(R"(
at 3ms kill spine
at 1ms kill leaf:1
at 6ms revive spine
)");
  ASSERT_EQ(s.size(), 3u);
  const auto& e = s.events();
  EXPECT_EQ(e[0].kind, FaultKind::kRouterKill);
  EXPECT_EQ(e[0].target.kind, TargetKind::kSpineRouter);
  EXPECT_EQ(e[0].at.ns(), sim::Duration::millis(3).ns());
  EXPECT_EQ(e[0].duration.ns(), 0);  // kill is permanent, never windowed
  EXPECT_EQ(e[1].kind, FaultKind::kRouterKill);
  EXPECT_EQ(e[1].target.kind, TargetKind::kLeafRouter);
  EXPECT_EQ(e[1].target.index, 1);
  EXPECT_EQ(e[2].kind, FaultKind::kRouterRevive);
  EXPECT_EQ(e[2].target.kind, TargetKind::kSpineRouter);
}

TEST(FaultSchedule, RejectsMalformedKillAndRevive) {
  EXPECT_THROW(FaultSchedule::parse("at 1ms kill spine for 2ms"),
               std::invalid_argument);  // kill is permanent; revive instead
  EXPECT_THROW(FaultSchedule::parse("at 1ms kill host:0"),
               std::invalid_argument);  // kill needs a router
  EXPECT_THROW(FaultSchedule::parse("at 1ms revive worker:0"),
               std::invalid_argument);  // revive needs a router
  EXPECT_THROW(FaultSchedule::parse("at 1ms kill"),
               std::invalid_argument);  // missing target
}

TEST(FaultInjector, RejectsOutOfRangeTargetsAtArmTime) {
  cluster::ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 2;
  spec.grads_per_packet = 128;
  spec.slab_pool = 256;
  cluster::Cluster cl(spec);
  FaultInjector injector(cl.simulator(), nullptr);
  injector.bind(cl);
  FaultSchedule bad;
  bad.crash(sim::Time(), /*worker=*/99);
  EXPECT_THROW(injector.arm(bad), std::out_of_range);

  // And a testbed has no spine to target.
  trioml::TestbedConfig tc;
  tc.num_workers = 2;
  tc.grads_per_packet = 128;
  trioml::Testbed tb(tc);
  FaultInjector tb_injector(tb.simulator(), nullptr);
  tb_injector.bind(tb);
  FaultSchedule spine_stall;
  spine_stall.stall(sim::Time(), FaultSchedule::spine_router(),
                    sim::Duration::micros(10));
  EXPECT_THROW(tb_injector.arm(spine_stall), std::out_of_range);
}

struct ChaosRun {
  std::uint64_t result_digest = 0;
  std::uint64_t fault_digest = 0;
  int finished = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t backoff_rearms = 0;
  std::uint64_t budget_exhausted = 0;
  std::uint64_t buckets_dropped = 0;
  std::vector<trioml::AllreduceResult> results;
  telemetry::Registry::Snapshot snapshot;
};

// The acceptance scenario: burst loss on every host link + a trunk flap
// + one host crash mid-allreduce, on an 8-worker 2-rack cluster with the
// hardened recovery path enabled.
ChaosRun run_chaos(const FaultSchedule& schedule) {
  cluster::ClusterSpec spec;
  spec.racks = 2;
  spec.workers_per_rack = 4;
  spec.grads_per_packet = 128;
  spec.slab_pool = 512;
  telemetry::Telemetry telem(/*metrics_on=*/true, /*trace_on=*/false);
  spec.telemetry = &telem;
  cluster::Cluster cl(spec);
  for (int w = 0; w < 8; ++w) {
    cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(5),
                                            /*retry_budget=*/10,
                                            sim::Duration::millis(20));
  }
  cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));

  FaultInjector injector(cl.simulator(), &telem);
  injector.bind(cl);
  injector.arm(schedule);

  const auto grads = cluster::patterned_gradients(8, 128 * 32);
  const auto run = cluster::run_allreduce(
      cl, grads, /*gen_id=*/1, sim::Time(sim::Duration::millis(150).ns()));
  cl.stop_straggler_detection();

  ChaosRun out;
  out.results = run.results;
  out.result_digest = digest_results(run.results);
  out.fault_digest = injector.digest();
  out.finished = run.finished;
  out.buckets_dropped = injector.buckets_dropped();
  for (int w = 0; w < 8; ++w) {
    out.retransmits += cl.worker(w).retransmissions();
    out.backoff_rearms += cl.worker(w).backoff_rearms();
    out.budget_exhausted += cl.worker(w).retry_budget_exhausted();
  }
  telem.metrics.take_snapshot(cl.simulator().now());
  out.snapshot = telem.metrics.snapshots().back();
  return out;
}

FaultSchedule acceptance_schedule() {
  net::GilbertElliott ge;
  ge.p_enter = 0.02;
  ge.p_exit = 0.2;
  FaultSchedule s;
  s.burst_loss(sim::Time(), FaultSchedule::host_link(Target::kAll), ge,
               sim::Duration::millis(2));
  s.flap(sim::Time() + sim::Duration::micros(30),
         FaultSchedule::fabric_link(0), sim::Duration::micros(200));
  s.crash(sim::Time() + sim::Duration::micros(50), /*worker=*/5);
  return s;
}

std::uint64_t snapshot_value(const telemetry::Registry::Snapshot& snap,
                             const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  ADD_FAILURE() << "counter not in snapshot: " << name;
  return 0;
}

// Golden deterministic replay: two runs of the same schedule produce
// bit-identical surviving results and equal fault-log digests.
TEST(FaultInjector, GoldenDeterministicReplay) {
  const ChaosRun a = run_chaos(acceptance_schedule());
  const ChaosRun b = run_chaos(acceptance_schedule());
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.backoff_rearms, b.backoff_rearms);
}

// Host-crash recovery: the crashed worker is excluded, every survivor
// converges, and survivors see degraded (rescaled) blocks where worker
// 5's contribution aged out.
TEST(FaultInjector, HostCrashExcludesWorkerAndSurvivorsConverge) {
  const ChaosRun run = run_chaos(acceptance_schedule());
  EXPECT_EQ(run.finished, 7);
  // Worker 5 (rack 1, local 1) never completes: its result slot is empty.
  EXPECT_TRUE(run.results[5].grads.empty() ||
              run.results[5].finish.ns() == 0);
  std::uint64_t degraded = 0;
  for (int w = 0; w < 8; ++w) {
    if (w == 5) continue;
    EXPECT_FALSE(run.results[std::size_t(w)].grads.empty()) << "worker " << w;
    degraded += run.results[std::size_t(w)].degraded_blocks;
  }
  // The crash makes rack 1's blocks complete only via straggler aging.
  EXPECT_GT(degraded, 0u);
}

// Burst loss drives the hardened retransmit path; the recovery counters
// must appear in the metrics snapshot with the observed values.
TEST(FaultInjector, BurstLossCountersVisibleInMetricsSnapshot) {
  const ChaosRun run = run_chaos(acceptance_schedule());
  EXPECT_GT(run.retransmits, 0u);
  EXPECT_GT(run.backoff_rearms, 0u);
  EXPECT_EQ(snapshot_value(run.snapshot, "cluster.worker.retransmits"),
            run.retransmits);
  EXPECT_EQ(snapshot_value(run.snapshot, "cluster.worker.backoff_rearms"),
            run.backoff_rearms);
  EXPECT_EQ(snapshot_value(run.snapshot, "cluster.worker.crashes"), 1u);
  EXPECT_EQ(snapshot_value(run.snapshot, "faults.injected"), 10u);
  EXPECT_EQ(snapshot_value(run.snapshot, "faults.recovered"), 9u);
  // The burst windows really dropped frames, visible per tier.
  const std::uint64_t burst_drops =
      snapshot_value(run.snapshot, "cluster.tier.host.up.fault.burst_drops") +
      snapshot_value(run.snapshot, "cluster.tier.host.down.fault.burst_drops");
  EXPECT_GT(burst_drops, 0u);
}

// Aggregation-bucket state loss: while rack 0's trunk is flapped down,
// the spine's blocks sit waiting for rack 0's partials — dropping them
// then loses rack 1's absorbed contributions. Worker retransmits
// re-create the buckets from scratch and the allreduce still converges
// for everyone. A router stall rides along to cover held-and-replayed
// ingress.
TEST(FaultInjector, BucketDropRecoversThroughRetransmission) {
  FaultSchedule s;
  s.flap(sim::Time() + sim::Duration::micros(5),
         FaultSchedule::fabric_link(0), sim::Duration::micros(300));
  s.drop_buckets(sim::Time() + sim::Duration::micros(100),
                 FaultSchedule::spine_agg(), /*job_id=*/1);
  s.stall(sim::Time() + sim::Duration::micros(120),
          FaultSchedule::leaf_router(1), sim::Duration::micros(50));
  const ChaosRun run = run_chaos(s);
  EXPECT_EQ(run.finished, 8);
  EXPECT_GT(run.buckets_dropped, 0u);
  for (const auto& r : run.results) EXPECT_FALSE(r.grads.empty());
}

}  // namespace
