// SwitchML across multiple pipelines (paper §6.1): aggregation state
// lives in one pipeline's register arrays, so workers attached to other
// pipelines force recirculation — correct results, degraded performance.
#include <gtest/gtest.h>

#include "switchml/switchml.hpp"

namespace {

struct Rig {
  static constexpr int kWorkers = 4;

  explicit Rig(bool split_pipelines) : sw(sim, switch_config()) {
    switchml::SwitchMlConfig cfg;
    cfg.num_workers = kWorkers;
    cfg.pool_size = 16;
    cfg.grads_per_packet = 64;
    std::vector<int> ports;
    for (int i = 0; i < kWorkers; ++i) {
      // Split mode: half the workers on pipeline 1's ports (16..).
      ports.push_back(split_pipelines && i >= kWorkers / 2 ? 16 + i : i);
    }
    agg = std::make_unique<switchml::SwitchMlAggregator>(sw, cfg, ports);
    for (int i = 0; i < kWorkers; ++i) {
      links.push_back(std::make_unique<net::Link>(sim, 100.0,
                                                  sim::Duration::micros(1)));
      switchml::SwitchMlWorker::Config wc;
      wc.worker_id = static_cast<std::uint8_t>(i);
      wc.num_workers = kWorkers;
      wc.ip = net::Ipv4Addr::from_octets(10, 1, 0, static_cast<std::uint8_t>(i + 1));
      wc.switch_ip = net::Ipv4Addr::from_octets(10, 1, 0, 254);
      wc.pool_size = 16;
      wc.grads_per_packet = 64;
      workers.push_back(std::make_unique<switchml::SwitchMlWorker>(
          sim, wc, links.back()->a_to_b()));
      links.back()->attach(*workers.back(), 0, sw,
                           ports[static_cast<std::size_t>(i)]);
      sw.attach_port(ports[static_cast<std::size_t>(i)],
                     links.back()->b_to_a());
    }
  }

  static pisa::SwitchConfig switch_config() {
    pisa::SwitchConfig cfg;
    cfg.pipelines = 4;
    cfg.ports_per_pipeline = 16;
    return cfg;
  }

  /// Runs one allreduce; returns mean per-block latency (us).
  double run(std::size_t blocks) {
    int done = 0;
    for (auto& w : workers) {
      std::vector<std::uint32_t> g(64 * blocks, 1);
      w->start_allreduce(std::move(g), 1,
                         [&](std::vector<std::uint32_t> r) {
                           ++done;
                           for (auto v : r) EXPECT_EQ(v, 4u);
                         });
    }
    sim.run();
    EXPECT_EQ(done, kWorkers);
    double sum = 0;
    for (auto& w : workers) sum += w->block_latency_us().mean();
    return sum / kWorkers;
  }

  sim::Simulator sim;
  pisa::Switch sw;
  std::unique_ptr<switchml::SwitchMlAggregator> agg;
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<switchml::SwitchMlWorker>> workers;
};

TEST(SwitchMlMultiPipe, SplitWorkersStillAggregateCorrectly) {
  Rig rig(/*split_pipelines=*/true);
  rig.run(20);
  EXPECT_EQ(rig.agg->completions(), 20u);
  // Half the workers' traffic (2 of 4) crossed pipelines.
  EXPECT_EQ(rig.agg->cross_pipeline_recirculations(), 2u * 20u);
}

TEST(SwitchMlMultiPipe, SinglePipelinePlacementAvoidsRecirculation) {
  Rig rig(/*split_pipelines=*/false);
  rig.run(20);
  EXPECT_EQ(rig.agg->cross_pipeline_recirculations(), 0u);
}

TEST(SwitchMlMultiPipe, RecirculationDegradesLatency) {
  // The paper's justification for connecting all servers to one pipeline:
  // "recirculation is required and will result in performance
  // degradation".
  Rig single(false);
  const double lat_single = single.run(50);
  Rig split(true);
  const double lat_split = split.run(50);
  EXPECT_GT(lat_split, lat_single * 1.05)
      << "cross-pipeline packets pay an extra traversal";
}

}  // namespace
