// Tests for §5's "Advanced straggler mitigation": frequent detection
// threads charge per-source event counters; an infrequent classifier
// thread distinguishes temporary from permanent stragglers and notifies
// the workers in-band.
#include <gtest/gtest.h>

#include "trioml/advanced_straggler.hpp"
#include "trioml/testbed.hpp"

namespace {

using namespace trioml;

std::vector<std::uint32_t> grads(std::size_t n) {
  return std::vector<std::uint32_t>(n, 1);
}

class AdvancedStragglerTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 4;

  AdvancedStragglerTest() {
    TestbedConfig cfg;
    cfg.num_workers = kWorkers;
    cfg.grads_per_packet = 64;
    cfg.window = 8;
    tb = std::make_unique<Testbed>(cfg);
    tb->app(0).enable_straggler_profiling(cfg.job_id);
    tb->start_straggler_detection(20, sim::Duration::millis(2));
  }

  /// Runs one allreduce round where `straggler` skips it entirely.
  void round_without(int straggler, std::uint16_t gen) {
    for (int w = 0; w < kWorkers; ++w) {
      if (w == straggler) continue;
      tb->worker(w).start_allreduce(grads(64 * 4), gen,
                                    [](AllreduceResult) {});
    }
    tb->simulator().run_until(tb->simulator().now() +
                              sim::Duration::millis(10));
  }

  /// Runs one healthy round with everyone participating.
  void healthy_round(std::uint16_t gen) {
    for (int w = 0; w < kWorkers; ++w) {
      tb->worker(w).start_allreduce(grads(64 * 4), gen,
                                    [](AllreduceResult) {});
    }
    tb->simulator().run_until(tb->simulator().now() +
                              sim::Duration::millis(10));
  }

  std::unique_ptr<Testbed> tb;
};

TEST_F(AdvancedStragglerTest, DetectionChargesMissingSourcesOnly) {
  round_without(/*straggler=*/3, 1);
  auto& sms = tb->router().pfe(0).sms();
  const auto& app = tb->app(0);
  // Worker 3 accumulated events (one per aged block); the others none.
  EXPECT_GT(sms.peek_u64(app.straggler_event_counter_addr(1, 3)), 0u);
  for (std::uint8_t w = 0; w < 3; ++w) {
    EXPECT_EQ(sms.peek_u64(app.straggler_event_counter_addr(1, w)), 0u)
        << "worker " << int(w);
  }
  EXPECT_GT(app.stats().straggler_events, 0u);
}

TEST_F(AdvancedStragglerTest, TemporaryStragglerNotified) {
  tb->app(0).start_straggler_classification(1, sim::Duration::millis(8),
                                            /*permanent_after=*/3);
  round_without(3, 1);
  healthy_round(2);
  tb->simulator().run_until(tb->simulator().now() +
                            sim::Duration::millis(20));

  // Every healthy worker heard that source 3 straggled, classified
  // temporary (it recovered before the permanent threshold).
  bool permanent_seen = false;
  for (int w = 0; w < 3; ++w) {
    const auto& notices = tb->worker(w).straggler_notices();
    ASSERT_FALSE(notices.empty()) << "worker " << w;
    EXPECT_EQ(notices.front().src, 3);
    for (const auto& n : notices) permanent_seen |= n.permanent;
  }
  EXPECT_FALSE(permanent_seen);
  EXPECT_GT(tb->app(0).stats().straggler_notices_sent, 0u);
}

TEST_F(AdvancedStragglerTest, PermanentStragglerEscalated) {
  tb->app(0).start_straggler_classification(1, sim::Duration::millis(8),
                                            /*permanent_after=*/3);
  // Worker 3 misses many consecutive rounds spanning several
  // classification windows.
  for (std::uint16_t gen = 1; gen <= 6; ++gen) round_without(3, gen);
  tb->simulator().run_until(tb->simulator().now() +
                            sim::Duration::millis(30));

  bool permanent_seen = false;
  for (const auto& n : tb->worker(0).straggler_notices()) {
    if (n.permanent) {
      permanent_seen = true;
      EXPECT_EQ(n.src, 3);
      EXPECT_GE(n.consecutive_windows, 3);
    }
  }
  EXPECT_TRUE(permanent_seen)
      << "a source missing for many windows must be declared permanent";
}

TEST_F(AdvancedStragglerTest, HealthyJobProducesNoNotices) {
  tb->app(0).start_straggler_classification(1, sim::Duration::millis(8), 3);
  for (std::uint16_t gen = 1; gen <= 4; ++gen) healthy_round(gen);
  tb->simulator().run_until(tb->simulator().now() +
                            sim::Duration::millis(30));
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(tb->worker(w).straggler_notices().empty()) << "worker " << w;
  }
  EXPECT_EQ(tb->app(0).stats().straggler_notices_sent, 0u);
}

TEST_F(AdvancedStragglerTest, NotificationsDoNotDisturbAggregation) {
  tb->app(0).start_straggler_classification(1, sim::Duration::millis(5), 3);
  round_without(3, 1);
  const auto completed_before = tb->app(0).stats().blocks_completed;
  // A healthy round must still aggregate exactly, notices flying around
  // or not.
  int done = 0;
  std::vector<AllreduceResult> results(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    tb->worker(w).start_allreduce(grads(64), 2, [&, w](AllreduceResult r) {
      results[static_cast<std::size_t>(w)] = std::move(r);
      ++done;
    });
  }
  tb->simulator().run_until(tb->simulator().now() +
                            sim::Duration::millis(20));
  ASSERT_EQ(done, kWorkers);
  for (const auto& r : results) {
    EXPECT_EQ(r.degraded_blocks, 0u);
    for (float v : r.grads) {
      EXPECT_NEAR(v, dequantize(kWorkers) / kWorkers, 1e-6f);
    }
  }
  EXPECT_GT(tb->app(0).stats().blocks_completed, completed_before);
}

TEST(TimerGroups, DetectionAndClassificationRunConcurrently) {
  // The two timer-thread types of §5 coexist as independent groups.
  TestbedConfig cfg;
  cfg.num_workers = 2;
  cfg.grads_per_packet = 64;
  Testbed tb(cfg);
  tb.start_straggler_detection(10, sim::Duration::millis(2));
  const int group =
      tb.app(0).start_straggler_classification(1, sim::Duration::millis(10));
  auto& timers = tb.router().pfe(0).timers();
  EXPECT_EQ(timers.count(), 11);  // 10 detectors + 1 classifier

  tb.simulator().run_until(sim::Time(sim::Duration::millis(50).ns()));
  const auto fires_with_both = timers.fires();
  EXPECT_GT(fires_with_both, 200u);

  timers.stop_group(group);
  EXPECT_EQ(timers.count(), 10);
  EXPECT_TRUE(timers.running());
  timers.stop();
  EXPECT_FALSE(timers.running());
}

}  // namespace
