#include <gtest/gtest.h>

#include "net/buffer.hpp"
#include "net/headers.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace {

TEST(Buffer, BigEndianRoundTrip) {
  net::Buffer b(16);
  b.set_u16(0, 0x1234);
  b.set_u32(2, 0xdeadbeef);
  b.set_u64(6, 0x0102030405060708ull);
  EXPECT_EQ(b.u16(0), 0x1234);
  EXPECT_EQ(b.u32(2), 0xdeadbeefu);
  EXPECT_EQ(b.u64(6), 0x0102030405060708ull);
  EXPECT_EQ(b.u8(0), 0x12);  // network order: MSB first
}

TEST(Buffer, LittleEndian32) {
  net::Buffer b(8);
  b.set_u32le(0, 0x11223344);
  EXPECT_EQ(b.u8(0), 0x44);
  EXPECT_EQ(b.u32le(0), 0x11223344u);
}

TEST(Buffer, BoundsChecked) {
  net::Buffer b(4);
  EXPECT_THROW(b.u32(1), std::out_of_range);
  EXPECT_THROW(b.set_u8(4, 0), std::out_of_range);
  EXPECT_THROW(b.view(2, 3), std::out_of_range);
  EXPECT_NO_THROW(b.u32(0));
}

TEST(Buffer, HexDump) {
  net::Buffer b(2);
  b.set_u8(0, 0xab);
  b.set_u8(1, 0x01);
  EXPECT_EQ(b.hex(), "ab01");
}

TEST(Ipv4Addr, StringRoundTrip) {
  const auto a = net::Ipv4Addr::from_string("10.1.2.3");
  EXPECT_EQ(a.to_string(), "10.1.2.3");
  EXPECT_EQ(a.value(), 0x0a010203u);
  EXPECT_THROW(net::Ipv4Addr::from_string("1.2.3.999"),
               std::invalid_argument);
  EXPECT_THROW(net::Ipv4Addr::from_string("nonsense"), std::invalid_argument);
}

TEST(Ipv4Addr, MulticastRange) {
  EXPECT_TRUE(net::Ipv4Addr::from_string("239.0.0.1").is_multicast());
  EXPECT_TRUE(net::Ipv4Addr::from_string("224.0.0.0").is_multicast());
  EXPECT_FALSE(net::Ipv4Addr::from_string("10.0.0.1").is_multicast());
  EXPECT_FALSE(net::Ipv4Addr::from_string("240.0.0.1").is_multicast());
}

TEST(Headers, EthernetRoundTrip) {
  net::Buffer b(14);
  net::EthernetHeader h;
  h.dst = {1, 2, 3, 4, 5, 6};
  h.src = {7, 8, 9, 10, 11, 12};
  h.ether_type = 0x0800;
  h.write(b, 0);
  const auto p = net::EthernetHeader::parse(b, 0);
  EXPECT_EQ(p.dst, h.dst);
  EXPECT_EQ(p.src, h.src);
  EXPECT_EQ(p.ether_type, 0x0800);
}

TEST(Headers, Ipv4ChecksumValidates) {
  net::Buffer b(20);
  net::Ipv4Header h;
  h.src = net::Ipv4Addr::from_string("10.0.0.1");
  h.dst = net::Ipv4Addr::from_string("10.0.0.2");
  h.total_length = 100;
  h.write(b, 0);
  EXPECT_TRUE(net::Ipv4Header::checksum_ok(b, 0));
  b.set_u8(16, 99);  // corrupt destination
  EXPECT_FALSE(net::Ipv4Header::checksum_ok(b, 0));
}

TEST(Headers, Ipv4ParseFields) {
  net::Buffer b(20);
  net::Ipv4Header h;
  h.src = net::Ipv4Addr::from_string("1.2.3.4");
  h.dst = net::Ipv4Addr::from_string("5.6.7.8");
  h.ttl = 17;
  h.protocol = net::Ipv4Header::kProtoUdp;
  h.total_length = 64;
  h.write(b, 0);
  const auto p = net::Ipv4Header::parse(b, 0);
  EXPECT_EQ(p.version, 4);
  EXPECT_EQ(p.ihl, 5);
  EXPECT_EQ(p.ttl, 17);
  EXPECT_EQ(p.src.to_string(), "1.2.3.4");
  EXPECT_EQ(p.dst.to_string(), "5.6.7.8");
  EXPECT_EQ(p.total_length, 64);
}

TEST(Headers, UdpFrameBuilder) {
  std::vector<std::uint8_t> payload{0xaa, 0xbb, 0xcc};
  auto frame = net::build_udp_frame(
      {1, 1, 1, 1, 1, 1}, {2, 2, 2, 2, 2, 2},
      net::Ipv4Addr::from_string("10.0.0.1"),
      net::Ipv4Addr::from_string("10.0.0.2"), 1111, 2222, payload);
  EXPECT_EQ(frame.size(), net::UdpFrameLayout::kPayloadOff + 3);
  const auto udp = net::UdpHeader::parse(frame, net::UdpFrameLayout::kUdpOff);
  EXPECT_EQ(udp.src_port, 1111);
  EXPECT_EQ(udp.dst_port, 2222);
  EXPECT_EQ(udp.length, net::UdpHeader::kSize + 3);
  EXPECT_TRUE(net::Ipv4Header::checksum_ok(frame, net::UdpFrameLayout::kIpOff));
  EXPECT_EQ(frame.u8(net::UdpFrameLayout::kPayloadOff), 0xaa);
}

TEST(Packet, HeadTailSplit) {
  net::Buffer small(100);
  net::Packet p1(small);
  EXPECT_EQ(p1.head_size(), 100u);
  EXPECT_EQ(p1.tail_size(), 0u);
  EXPECT_FALSE(p1.has_tail());

  net::Buffer big(1000);
  net::Packet p2(big);
  EXPECT_EQ(p2.head_size(), net::Packet::kHeadSize);
  EXPECT_EQ(p2.tail_size(), 1000 - net::Packet::kHeadSize);
  EXPECT_TRUE(p2.has_tail());
}

class SinkNode : public net::Node {
 public:
  void receive(net::PacketPtr pkt, int port) override {
    packets.push_back({std::move(pkt), port});
  }
  std::string name() const override { return "sink"; }
  std::vector<std::pair<net::PacketPtr, int>> packets;
};

TEST(Link, SerializationDelayMatchesBandwidth) {
  sim::Simulator s;
  SinkNode sink;
  // 100 Gbps, zero propagation: a 1250-byte frame takes 100 ns on wire.
  net::LinkEndpoint ep(s, 100.0, sim::Duration::zero());
  ep.connect(sink, 7);
  ep.send(net::Packet::make(net::Buffer(1250)));
  s.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets[0].second, 7);
  EXPECT_EQ(s.now().ns(), 100);
}

TEST(Link, BackToBackFramesQueueOnTheWire) {
  sim::Simulator s;
  SinkNode sink;
  net::LinkEndpoint ep(s, 10.0, sim::Duration::nanos(50));
  ep.connect(sink, 0);
  // Two 125-byte frames at 10 Gbps: 100 ns each on the wire.
  ep.send(net::Packet::make(net::Buffer(125)));
  ep.send(net::Packet::make(net::Buffer(125)));
  std::vector<std::int64_t> arrivals;
  s.schedule_in(sim::Duration::micros(10), [] {});
  s.run();
  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(ep.bytes_sent(), 250u);
}

TEST(Link, FiniteQueueDropsExcess) {
  sim::Simulator s;
  SinkNode sink;
  net::LinkEndpoint ep(s, 1.0, sim::Duration::zero(), /*queue_frames=*/2);
  ep.connect(sink, 0);
  EXPECT_TRUE(ep.send(net::Packet::make(net::Buffer(1000))));
  EXPECT_TRUE(ep.send(net::Packet::make(net::Buffer(1000))));
  EXPECT_FALSE(ep.send(net::Packet::make(net::Buffer(1000))));
  EXPECT_EQ(ep.frames_dropped(), 1u);
  s.run();
  EXPECT_EQ(sink.packets.size(), 2u);
}

TEST(Link, SendWithoutPeerThrows) {
  sim::Simulator s;
  net::LinkEndpoint ep(s, 10.0, sim::Duration::zero());
  EXPECT_THROW(ep.send(net::Packet::make(net::Buffer(10))),
               std::logic_error);
}

TEST(Link, FullDuplexAttach) {
  sim::Simulator s;
  SinkNode a, b;
  net::Link link(s, 100.0, sim::Duration::nanos(10));
  link.attach(a, 1, b, 2);
  link.a_to_b().send(net::Packet::make(net::Buffer(100)));
  link.b_to_a().send(net::Packet::make(net::Buffer(100)));
  s.run();
  ASSERT_EQ(a.packets.size(), 1u);
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(a.packets[0].second, 1);
  EXPECT_EQ(b.packets[0].second, 2);
}

}  // namespace
