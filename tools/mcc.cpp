// mcc — the Microcode compiler driver.
//
// Compiles a Microcode source file with the TC-style compiler and prints
// a per-instruction resource report (the information a Trio programmer
// uses to keep each begin/end block within the VLIW budget), or the
// compile error with file:line:column.
//
//   mcc program.tmc            compile + resource report
//   mcc --storage program.tmc  also dump the variable storage map
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "microcode/compiler.hpp"
#include "microcode/error.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: mcc [--storage] <program.tmc>\n");
  return 2;
}

const char* location_kind(const microcode::Location& loc) {
  switch (loc.kind) {
    case microcode::Location::Kind::kReg: return "register";
    case microcode::Location::Kind::kLmem:
      return loc.is_array ? "lmem array" : "lmem";
    case microcode::Location::Kind::kConst: return "virtual";
    case microcode::Location::Kind::kBuiltin: return "builtin";
    case microcode::Location::Kind::kBus: return "bus";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool dump_storage = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--storage") {
      dump_storage = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "mcc: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  std::shared_ptr<const microcode::CompiledProgram> program;
  try {
    program = microcode::compile(ss.str());
  } catch (const microcode::CompileError& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }

  std::printf("%s: %zu micro-instructions, %zu bytes of thread LMEM\n",
              path.c_str(), program->instruction_count(),
              program->lmem_used);
  std::printf("%-20s %-10s %-11s %-7s %-8s %-6s\n", "instruction",
              "reg-reads", "lmem-reads", "writes", "alu-ops", "xtxns");
  for (const auto& block : program->module.blocks) {
    const auto& r = program->resources[program->labels.at(block.label)];
    std::printf("%-20s %-10d %-11d %-7d %-8d %-6d\n", block.label.c_str(),
                r.reg_reads, r.lmem_reads, r.writes, r.alu_ops, r.xtxns);
  }

  if (dump_storage) {
    std::printf("\nstorage map:\n");
    for (const auto& [name, loc] : program->vars) {
      if (name.rfind("ir", 0) == 0 && name.size() == 3) continue;  // ir0..7
      if (loc.kind == microcode::Location::Kind::kBuiltin) continue;
      std::printf("  %-24s %-10s", name.c_str(), location_kind(loc));
      switch (loc.kind) {
        case microcode::Location::Kind::kReg:
          std::printf(" r%d", loc.reg);
          break;
        case microcode::Location::Kind::kLmem:
          std::printf(" @%zu (%zu bytes)", loc.lmem_offset, loc.size_bytes);
          break;
        case microcode::Location::Kind::kConst:
          std::printf(" = %llu",
                      static_cast<unsigned long long>(loc.const_value));
          break;
        case microcode::Location::Kind::kBus:
          std::printf(" lane %d", loc.bus_slot);
          break;
        default:
          break;
      }
      std::printf("\n");
    }
  }
  return 0;
}
