// Compile-check prelude for the ```cpp blocks in docs/*.md and
// README.md (tools/check_docs.py wraps each block as
// `void docs_snippet_N(TRIO_DOCS_SNIPPET_PARAMS) {{ <block> }}`).
//
// Docs snippets reference a running simulation's surroundings — a
// calibration, gradient vectors, a completion callback — without
// declaring them; the parameter macro provides those names so a snippet
// compiles exactly as written (the doubled braces let snippets shadow
// them). Keep the list generic: a snippet that needs something exotic
// should declare it itself.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "jobs/fluid.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/tenant.hpp"
#include "sim/fluid.hpp"
#include "microcode/compiler.hpp"
#include "microcode/interpreter.hpp"
#include "recovery/recovery.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/router.hpp"
#include "trioml/host.hpp"
#include "trioml/testbed.hpp"

#define TRIO_DOCS_SNIPPET_PARAMS                                      \
  trio::Calibration cal, telemetry::Telemetry &telem, int num_pfes,   \
      int ports_per_pfe, int w, std::vector<std::uint32_t> gradients, \
      std::vector<std::vector<std::uint32_t>> grads,                  \
      std::vector<std::vector<std::uint32_t>> gradients_per_worker,   \
      std::string source, std::function<void(trioml::AllreduceResult)> on_done
