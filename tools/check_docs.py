#!/usr/bin/env python3
"""Documentation checks (run by the `docs` CI job).

1. Every relative markdown link in README.md, EXPERIMENTS.md and
   docs/*.md must point at a file that exists in the repository.
2. Every fenced ```cpp block in those files must compile
   (syntax-only, wrapped in a function body after tools/docs_prelude.hpp
   so snippets can reference a surrounding simulation).
3. Every docs/*.md page must be linked from the docs/README.md index —
   a page nobody can discover is a page nobody maintains.
4. Every BENCH_*.json artifact named in EXPERIMENTS.md must be produced
   by a CI job (.github/workflows/ci.yml mentions it), so reproduction
   commands never reference artifacts that no longer exist.

Blocks tagged with any other language (```sh, ```c, untagged ASCII
diagrams) are not compiled. Usage:

    python3 tools/check_docs.py [--repo ROOT] [--compiler c++]
"""
import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def doc_files(repo: Path):
    files = [repo / "README.md", repo / "EXPERIMENTS.md"]
    files += sorted((repo / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(repo: Path, md: Path) -> list:
    errors = []
    # Strip fenced code blocks: their brackets are not links.
    lines, in_fence = [], False
    for line in md.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append(line)
    for target in LINK_RE.findall("\n".join(lines)):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            errors.append(f"{md.relative_to(repo)}: broken link -> {target}")
    return errors


def cpp_blocks(md: Path):
    block, in_cpp = [], False
    for number, line in enumerate(md.read_text().splitlines(), start=1):
        stripped = line.strip()
        if not in_cpp and stripped == "```cpp":
            block, in_cpp, start = [], True, number + 1
        elif in_cpp and stripped == "```":
            in_cpp = False
            yield start, "\n".join(block)
        elif in_cpp:
            block.append(line)


def check_cpp(repo: Path, md: Path, compiler: str) -> list:
    errors = []
    for index, (line, body) in enumerate(cpp_blocks(md)):
        source = (
            '#include "docs_prelude.hpp"\n'
            f"void docs_snippet_{index}(TRIO_DOCS_SNIPPET_PARAMS) "
            f"{{{{\n{body}\n}}}}\n"
        )
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", dir=repo, delete=False
        ) as tmp:
            tmp.write(source)
            tmp_path = Path(tmp.name)
        try:
            proc = subprocess.run(
                [
                    compiler,
                    "-fsyntax-only",
                    "-std=c++20",
                    "-I", str(repo / "src"),
                    "-I", str(repo / "tools"),
                    str(tmp_path),
                ],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                errors.append(
                    f"{md.relative_to(repo)}:{line}: cpp block does not "
                    f"compile:\n{proc.stderr.strip()}"
                )
        finally:
            tmp_path.unlink()
    return errors


def check_docs_index(repo: Path) -> list:
    """Every docs/*.md page must be linked from the docs/README.md index."""
    index = repo / "docs" / "README.md"
    if not index.is_file():
        return ["docs/README.md: missing documentation index"]
    linked = {
        target.split("#", 1)[0]
        for target in LINK_RE.findall(index.read_text())
    }
    errors = []
    for page in sorted((repo / "docs").glob("*.md")):
        if page.name == "README.md":
            continue
        if page.name not in linked:
            errors.append(
                f"docs/README.md: index is missing a row for docs/{page.name}"
            )
    return errors


BENCH_RE = re.compile(r"BENCH_[A-Za-z0-9_.-]*\.json")


def check_bench_artifacts(repo: Path) -> list:
    """Every BENCH_*.json named in EXPERIMENTS.md must appear in CI."""
    experiments = repo / "EXPERIMENTS.md"
    if not experiments.is_file():
        return []
    ci = repo / ".github" / "workflows" / "ci.yml"
    produced = set(BENCH_RE.findall(ci.read_text())) if ci.is_file() else set()
    errors = []
    for name in sorted(set(BENCH_RE.findall(experiments.read_text()))):
        if name not in produced:
            errors.append(
                f"EXPERIMENTS.md: names bench artifact {name} but no CI job "
                f"in .github/workflows/ci.yml produces it"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=Path(__file__).resolve().parent.parent,
                        type=Path)
    parser.add_argument("--compiler", default="c++")
    args = parser.parse_args()
    repo = args.repo.resolve()

    errors, checked_links, checked_blocks = [], 0, 0
    for md in doc_files(repo):
        link_errors = check_links(repo, md)
        errors += link_errors
        checked_links += 1
        block_errors = check_cpp(repo, md, args.compiler)
        errors += block_errors
        checked_blocks += sum(1 for _ in cpp_blocks(md))
    errors += check_docs_index(repo)
    errors += check_bench_artifacts(repo)

    for message in errors:
        print(message, file=sys.stderr)
    print(f"checked {checked_links} file(s), {checked_blocks} cpp block(s): "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
