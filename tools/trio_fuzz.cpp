// trio-fuzz — chaos fuzzer for the simulated Trio cluster (docs/vigil.md).
//
//   trio-fuzz [--profile failover|jobs|netrpc|fluid] [--seed S] [--runs N]
//             [--time-budget DUR] [--report FILE] [--repro-dir DIR]
//             [--shrink-budget N] [--blocks N] [--plant-bug] [--emit DIR]
//
// Each run i derives scenario seed S+i, generates a fault schedule from
// the profile's grammar (src/vigil/generator.*), replays it against the
// profile's canonical topology with the full invariant catalogue armed
// (src/vigil/invariants.*), and — on any violation — delta-debugs the
// schedule down to a minimal repro (src/vigil/shrink.*) written to
// --repro-dir as a replayable `.faults` file.
//
// --time-budget bounds *wall-clock* time (e.g. `90s`): no new run starts
// once it is spent (runs in flight finish). --report writes a JSON
// summary either way. Exit status: 0 when every run converged with zero
// violations, 1 otherwise, 2 on usage errors.
//
// --plant-bug re-introduces a real historical bug (workers wedging
// forever against a permanently dead aggregation path instead of
// completing degraded) so the pipeline can be demonstrated end to end:
// the watchdog catches it, the shrinker reduces it.
//
// --emit DIR generates (but does not execute) each run's schedule into
// DIR — how the seed corpus under tests/corpus/ is (re)generated.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faults/schedule.hpp"
#include "vigil/generator.hpp"
#include "vigil/runner.hpp"
#include "vigil/shrink.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: trio-fuzz [--profile failover|jobs|netrpc|fluid] [--seed S] "
      "[--runs N] [--time-budget DUR] [--report FILE] [--repro-dir DIR] "
      "[--shrink-budget N] [--blocks N] [--plant-bug] [--emit DIR]\n");
  return 2;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RunRecord {
  std::uint64_t seed = 0;
  bool converged = false;
  std::vector<vigil::Violation> violations;
  std::size_t events = 0;
  std::size_t shrunk_events = 0;
  int oracle_calls = 0;
  std::string repro_path;
  std::string repro_dsl;
};

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return bool(out);
}

std::string repro_header(vigil::Profile profile, std::uint64_t seed,
                         const std::vector<vigil::Violation>& violations) {
  std::ostringstream os;
  os << "# trio-fuzz repro: profile=" << vigil::profile_name(profile)
     << " seed=" << seed << "\n";
  for (const vigil::Violation& v : violations) {
    os << "# violates " << v.invariant << ": " << v.detail << "\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  vigil::Profile profile = vigil::Profile::kFailover;
  std::uint64_t seed = 1;
  int runs = 20;
  int blocks = 2;
  int shrink_budget = 120;
  bool plant_bug = false;
  std::string budget_s;
  std::string report_path;
  std::string repro_dir;
  std::string emit_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      const std::string eq = std::string(flag) + "=";
      if (arg.rfind(eq, 0) == 0) return arg.c_str() + eq.size();
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--profile")) {
      try {
        profile = vigil::parse_profile(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "trio-fuzz: %s\n", e.what());
        return 2;
      }
    } else if (const char* v = value("--seed")) {
      seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = value("--runs")) {
      runs = std::atoi(v);
    } else if (const char* v = value("--blocks")) {
      blocks = std::atoi(v);
    } else if (const char* v = value("--shrink-budget")) {
      shrink_budget = std::atoi(v);
    } else if (const char* v = value("--time-budget")) {
      budget_s = v;
    } else if (const char* v = value("--report")) {
      report_path = v;
    } else if (const char* v = value("--repro-dir")) {
      repro_dir = v;
    } else if (const char* v = value("--emit")) {
      emit_dir = v;
    } else if (arg == "--plant-bug") {
      plant_bug = true;
    } else {
      return usage();
    }
  }
  if (runs <= 0 || blocks <= 0) return usage();

  std::int64_t budget_ns = -1;
  if (!budget_s.empty()) {
    try {
      budget_ns = faults::parse_duration(budget_s).ns();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trio-fuzz: %s\n", e.what());
      return 2;
    }
  }

  if (!emit_dir.empty()) {
    // Generation-only: write each run's schedule as a .faults file.
    for (int i = 0; i < runs; ++i) {
      const std::uint64_t run_seed = seed + std::uint64_t(i);
      const faults::FaultSchedule schedule =
          vigil::generate(run_seed, profile);
      char name[96];
      std::snprintf(name, sizeof(name), "%s/%s-seed%llu.faults",
                    emit_dir.c_str(), vigil::profile_name(profile),
                    static_cast<unsigned long long>(run_seed));
      std::ostringstream os;
      os << "# generated by trio-fuzz --emit: profile="
         << vigil::profile_name(profile) << " seed=" << run_seed << "\n"
         << schedule.to_dsl();
      if (!write_file(name, os.str())) {
        std::fprintf(stderr, "trio-fuzz: cannot write %s\n", name);
        return 1;
      }
      std::printf("emitted %s (%zu events)\n", name, schedule.size());
    }
    return 0;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto wall_ns = [&] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  vigil::RunConfig config;
  config.profile = profile;
  config.blocks_per_worker = blocks;
  config.plant_wedge_bug = plant_bug;

  std::vector<RunRecord> records;
  int completed = 0;
  int violating = 0;
  bool budget_hit = false;
  for (int i = 0; i < runs; ++i) {
    if (budget_ns >= 0 && wall_ns() >= budget_ns) {
      budget_hit = true;
      break;
    }
    config.seed = seed + std::uint64_t(i);
    const vigil::RunReport report = vigil::run_scenario(config);
    ++completed;
    RunRecord rec;
    rec.seed = config.seed;
    rec.converged = report.converged;
    rec.violations = report.violations;
    rec.events = report.schedule.size();
    if (report.ok()) {
      std::printf("run %d seed %llu: ok (%zu events, %d/%d finished)\n", i,
                  static_cast<unsigned long long>(config.seed), rec.events,
                  report.finished, report.expected);
      records.push_back(std::move(rec));
      continue;
    }
    ++violating;
    std::printf("run %d seed %llu: VIOLATION (%zu events)\n", i,
                static_cast<unsigned long long>(config.seed), rec.events);
    for (const vigil::Violation& v : report.violations) {
      std::printf("  %s at %s: %s\n", v.invariant.c_str(),
                  v.at.to_string().c_str(), v.detail.c_str());
    }
    if (!report.converged) {
      std::printf("  unconverged: %d/%d finished (%d crashed)\n",
                  report.finished, report.expected, report.crashed);
    }

    // Shrink to a minimal repro. The oracle re-runs the same config; a
    // candidate "still violates" when the replay is not ok().
    const vigil::RunConfig oracle_config = config;
    vigil::ShrinkConfig shrink_config;
    shrink_config.max_oracle_calls = shrink_budget;
    const vigil::ShrinkResult shrunk = vigil::shrink(
        report.schedule,
        [&oracle_config](const faults::FaultSchedule& candidate) {
          return !vigil::run_schedule(oracle_config, candidate).ok();
        },
        shrink_config);
    rec.shrunk_events = shrunk.schedule.size();
    rec.oracle_calls = shrunk.oracle_calls;
    rec.repro_dsl = repro_header(profile, config.seed, report.violations) +
                    shrunk.schedule.to_dsl();
    std::printf("  shrunk %zu -> %zu event(s) in %d replay(s)\n", rec.events,
                rec.shrunk_events, rec.oracle_calls);
    if (!repro_dir.empty()) {
      char name[96];
      std::snprintf(name, sizeof(name), "%s/repro-%s-seed%llu.faults",
                    repro_dir.c_str(), vigil::profile_name(profile),
                    static_cast<unsigned long long>(config.seed));
      if (write_file(name, rec.repro_dsl)) {
        rec.repro_path = name;
        std::printf("  repro: %s\n", name);
      } else {
        std::fprintf(stderr, "trio-fuzz: cannot write %s\n", name);
      }
    }
    records.push_back(std::move(rec));
  }

  const double wall_ms = double(wall_ns()) / 1e6;
  std::printf("%d/%d run(s), %d violating, %.0f ms wall%s\n", completed,
              runs, violating, wall_ms,
              budget_hit ? " (time budget hit)" : "");

  if (!report_path.empty()) {
    std::ostringstream os;
    os << "{\n"
       << "  \"profile\": \"" << vigil::profile_name(profile) << "\",\n"
       << "  \"base_seed\": " << seed << ",\n"
       << "  \"runs_requested\": " << runs << ",\n"
       << "  \"runs_completed\": " << completed << ",\n"
       << "  \"violating_runs\": " << violating << ",\n"
       << "  \"time_budget_hit\": " << (budget_hit ? "true" : "false")
       << ",\n"
       << "  \"wall_ms\": " << std::int64_t(wall_ms) << ",\n"
       << "  \"planted_bug\": " << (plant_bug ? "true" : "false") << ",\n"
       << "  \"runs\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
      const RunRecord& r = records[i];
      os << "    {\"seed\": " << r.seed << ", \"converged\": "
         << (r.converged ? "true" : "false") << ", \"events\": " << r.events
         << ", \"violations\": [";
      for (std::size_t j = 0; j < r.violations.size(); ++j) {
        os << (j ? ", " : "") << "{\"invariant\": \""
           << json_escape(r.violations[j].invariant) << "\", \"detail\": \""
           << json_escape(r.violations[j].detail) << "\"}";
      }
      os << "]";
      if (!r.repro_dsl.empty()) {
        os << ", \"shrunk_events\": " << r.shrunk_events
           << ", \"oracle_calls\": " << r.oracle_calls;
        if (!r.repro_path.empty()) {
          os << ", \"repro\": \"" << json_escape(r.repro_path) << "\"";
        }
      }
      os << "}" << (i + 1 < records.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    if (!write_file(report_path, os.str())) {
      std::fprintf(stderr, "trio-fuzz: cannot write %s\n",
                   report_path.c_str());
      return 1;
    }
    std::printf("report: %s\n", report_path.c_str());
  }
  return violating == 0 ? 0 : 1;
}
