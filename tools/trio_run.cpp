// trio-run — execute a Microcode program on the simulated router against
// synthetic traffic and report what happened.
//
//   trio-run <program.tmc> [--packets N] [--mix ip,arp,opts]
//            [--counter WORD_ADDR] ... [--metrics-out FILE]
//            [--trace-out FILE]
//   trio-run --cluster RxW [--blocks N] [--shards N] [--faults FILE]
//            [--seed S] [--deadline DUR] [--jobs FILE] [--netrpc] [--fluid]
//            [--no-isolation] [--metrics-out FILE] [--trace-out FILE]
//
// Traffic mix tokens: "ip" (clean IPv4/UDP), "arp" (non-IP EtherType),
// "opts" (IPv4 with options, IHL=6). Counters named with --counter are
// read back from the Shared Memory System (as 16-byte Packet/Byte
// counters at the given 8-byte word address) after the run.
//
// --cluster RxW skips the microcode path and instead materializes an
// R-rack, W-workers-per-rack cluster (src/cluster/, docs/cluster.md),
// runs one Trio-ML allreduce through its two-level aggregation tree and
// reports per-tier statistics.
//
// --jobs FILE (cluster mode) loads a multi-tenant spec in the jobs DSL
// (docs/jobs.md): each `tenant <id> <allreduce|besteffort> [key=value...]`
// line becomes one tenant admitted by a jobs::JobManager, per-tenant
// fabric isolation (hash-table key partitions + MQSS weighted queues) is
// enabled unless --no-isolation is given, and every tenant runs
// concurrently. Malformed specs are rejected with the offending line and
// column, like --faults.
//
// --netrpc (cluster mode) admits one canned NetRPC tenant (id 4: sum
// policy, 3 replicas, hot-key cache — docs/netrpc.md) on top of whatever
// --jobs declared, so `trio-run --cluster 2x4 --netrpc` demos the
// in-network RPC path with zero spec files. NetRPC tenants — canned or
// from --jobs — get a per-tenant report: calls merged in-network,
// degraded completions, cache hit rate, PFE counter readbacks and the
// value digest.
//
// --fluid (cluster mode, with --jobs) demotes every eligible best-effort
// tenant (`fluid=1`, the default) to flow-level fluid modelling
// (docs/fluid.md): its per-host packet sources are replaced by rate-shared
// fluid streams that re-materialise as real frames inside --faults windows
// and recovery epochs. Reports transitions, fluid bytes and re-materialised
// frames after the run.
//
// --shards N (cluster mode) runs the cluster's discrete-event core on N
// OS threads — one shard per router domain, conservative lookahead
// windows (docs/performance.md). Results are bit-identical at every
// shard count. Default: hardware concurrency, capped by the router
// count; forced to 1 by --jobs, --netrpc and --trace-out.
//
// --faults FILE (cluster mode) loads a chaos schedule in the faults DSL
// (docs/faults.md), validates it (tenant= qualifiers must name tenants
// declared by --jobs/--netrpc; kill/revive and crash/restart windows must
// pair up without overlap), arms it on the cluster, hardens every
// worker's retransmit path — bounded retries plus a give-up grace so
// unreachable aggregation completes degraded instead of retrying forever
// — and enables straggler aging so injected faults recover; --deadline
// DUR (e.g. 200ms) bounds the run. Crashed workers are expected not to
// finish: the exit status only fails when a *surviving* worker misses
// the deadline.
//
// --seed S (cluster mode) makes a faulted run reproducible end to end:
// it seeds the injector's derived loss/corruption streams and every
// worker's retransmit jitter, so the same schedule + seed replays the
// same packet trace. After the run the cluster drains and the vigil
// invariant catalogue (docs/vigil.md) is checked — a tripped invariant
// prints the violations plus the fault-log digest and fails the run.
//
// --metrics-out writes the telemetry registry as JSON; --trace-out writes
// a Chrome trace_event JSON timeline (chrome://tracing, Perfetto) with
// one row per PPE thread plus the hardware blocks (docs/telemetry.md).
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/allreduce.hpp"
#include "cluster/cluster.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "jobs/fluid.hpp"
#include "jobs/job_manager.hpp"
#include "jobs/tenant.hpp"
#include "microcode/compiler.hpp"
#include "microcode/error.hpp"
#include "microcode/interpreter.hpp"
#include "netrpc/app.hpp"
#include "telemetry/telemetry.hpp"
#include "trio/router.hpp"
#include "vigil/invariants.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trio-run <program.tmc> [--packets N] "
               "[--mix ip,arp,opts] [--counter WORD_ADDR]... "
               "[--metrics-out FILE] [--trace-out FILE]\n"
               "       trio-run --cluster RxW [--blocks N] [--shards N] "
               "[--faults FILE] [--seed S] [--deadline DUR] "
               "[--jobs FILE] [--netrpc] [--fluid] [--no-isolation] "
               "[--metrics-out FILE] [--trace-out FILE]\n");
  return 2;
}

/// Post-run invariant sweep (docs/vigil.md): drain the cluster, run the
/// catalogue, print anything that tripped. Returns true when clean.
bool check_invariants(cluster::Cluster& cl, jobs::JobManager* mgr,
                      const jobs::JobsSpec& jobs_spec,
                      const faults::FaultInjector& injector,
                      bool have_faults) {
  if (mgr && mgr->netrpc_app()) mgr->netrpc_app()->stop_aging();
  sim::Simulator& s = cl.simulator();
  s.run_until(s.now() + sim::Duration::millis(60));
  vigil::InvariantEngine inv(cl);
  if (mgr) inv.attach_jobs(*mgr, jobs_spec);
  if (s.pending()) {
    // Something is still churning: only the anytime checks are valid.
    inv.check_conservation();
  } else {
    inv.check_quiescent();
  }
  if (inv.ok()) return true;
  for (const vigil::Violation& v : inv.violations()) {
    std::printf("  invariant %s tripped at %s: %s\n", v.invariant.c_str(),
                v.at.to_string().c_str(), v.detail.c_str());
  }
  if (have_faults) {
    std::printf("  fault log digest: %016llx\n",
                static_cast<unsigned long long>(injector.digest()));
  }
  return false;
}

int run_cluster(const std::string& topo, int blocks, int shards,
                const std::string& faults_path, std::uint64_t seed,
                const std::string& deadline_s, const std::string& jobs_path,
                bool netrpc_demo, bool fluid, bool isolation,
                const std::string& metrics_out,
                const std::string& trace_out) {
  const std::size_t x = topo.find('x');
  const int racks = x == std::string::npos ? 0 : std::atoi(topo.c_str());
  const int wpr =
      x == std::string::npos ? 0 : std::atoi(topo.c_str() + x + 1);
  if (racks <= 0 || wpr <= 0 || blocks <= 0) return usage();

  telemetry::Telemetry telem(!metrics_out.empty(), !trace_out.empty());
  cluster::ClusterSpec spec;
  spec.racks = racks;
  spec.workers_per_rack = wpr;
  if (shards <= 0) {
    // Auto: one shard per hardware thread, capped by the router count
    // inside Cluster::effective_shards.
    const unsigned hw = std::thread::hardware_concurrency();
    shards = hw > 0 ? int(hw) : 1;
  }
  if (!jobs_path.empty() || netrpc_demo || !trace_out.empty()) {
    // The multi-tenant job manager and the Perfetto tracer keep
    // cross-router state without per-shard synchronisation
    // (docs/performance.md "when --shards 1 is required").
    shards = 1;
  }
  spec.shards = shards;
  if (telem.metrics.enabled() || telem.tracer.enabled()) {
    spec.telemetry = &telem;
  }
  try {
    spec.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trio-run: %s\n", e.what());
    return 1;
  }

  jobs::JobsSpec jobs_spec;
  if (!jobs_path.empty()) {
    try {
      jobs_spec = jobs::JobsSpec::load(jobs_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trio-run: %s\n", e.what());
      return 1;
    }
  }
  if (netrpc_demo) {
    bool have_netrpc = false;
    for (const jobs::TenantSpec& t : jobs_spec.tenants) {
      if (t.is_netrpc()) have_netrpc = true;
    }
    if (!have_netrpc) {
      jobs::TenantSpec rpc;
      rpc.id = 4;
      rpc.kind = jobs::TenantKind::kNetRpc;
      for (const jobs::TenantSpec& t : jobs_spec.tenants) {
        if (t.id == rpc.id) {
          std::fprintf(stderr,
                       "trio-run: --netrpc wants tenant id 4 but --jobs "
                       "already declares it\n");
          return 1;
        }
      }
      jobs_spec.tenants.push_back(rpc);
    }
  }

  faults::FaultSchedule schedule;
  if (!faults_path.empty()) {
    try {
      schedule = faults::FaultSchedule::load(faults_path);
      // Validate against the declared tenants: a `tenant=` qualifier
      // naming an unknown tenant, or kill/revive / crash/restart windows
      // that overlap or fail to pair, is a spec error worth rejecting at
      // startup rather than a silently inert (or doubly applied) fault.
      std::vector<int> declared;
      for (const jobs::TenantSpec& t : jobs_spec.tenants) {
        declared.push_back(int(t.id));
      }
      schedule.validate(&declared);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trio-run: %s\n", e.what());
      return 1;
    }
  }
  sim::Time deadline = sim::Time::max();
  if (!deadline_s.empty()) {
    try {
      deadline = sim::Time() + faults::parse_duration(deadline_s);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trio-run: %s\n", e.what());
      return 1;
    }
  } else if (!schedule.empty() || !jobs_spec.empty()) {
    deadline = sim::Time() + sim::Duration::millis(200);
  }

  if (fluid && jobs_path.empty()) {
    std::fprintf(stderr,
                 "trio-run: --fluid needs --jobs (only best-effort tenants "
                 "are demotable, docs/fluid.md)\n");
    return 1;
  }

  cluster::Cluster cl(spec);
  std::unique_ptr<jobs::JobManager> mgr;
  std::unique_ptr<jobs::FluidController> fluidc;
  if (!jobs_spec.empty()) {
    mgr = std::make_unique<jobs::JobManager>(cl);
    if (isolation) mgr->enable_isolation();
    const jobs::AdmissionResult adm = mgr->admit_all(jobs_spec);
    if (!adm.admitted) {
      std::fprintf(stderr, "trio-run: admission rejected: %s\n",
                   adm.reason.c_str());
      return 1;
    }
    if (fluid) {
      fluidc = std::make_unique<jobs::FluidController>(cl);
      mgr->enable_fluid(*fluidc);
    }
  }
  faults::FaultInjector injector(cl.simulator(), &telem);
  if (!schedule.empty()) {
    injector.bind(cl);
    if (mgr) mgr->bind_fault_injector(injector);
    injector.set_base_seed(seed);
    try {
      injector.arm(schedule);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trio-run: %s\n", e.what());
      return 1;
    }
    // A faulted run needs the recovery machinery: hardened retransmits on
    // every worker — with a give-up grace, so a block whose aggregation
    // path died for good completes degraded instead of retrying forever —
    // plus straggler aging so dead contributors age out.
    for (int w = 0; w < spec.total_workers(); ++w) {
      cl.worker(w).enable_hardened_retransmit(sim::Duration::millis(5),
                                              /*retry_budget=*/10,
                                              sim::Duration::millis(20));
      cl.worker(w).enable_give_up(sim::Duration::millis(40));
      cl.worker(w).reseed_jitter(seed ^ (0x74726f6eull + std::uint64_t(w)));
    }
    if (mgr) {
      for (jobs::TenantId t : mgr->admitted()) {
        for (int w = 0; w < spec.total_workers(); ++w) {
          if (trioml::TrioMlWorker* worker = mgr->tenant_worker(t, w)) {
            worker->enable_hardened_retransmit(sim::Duration::millis(5),
                                               /*retry_budget=*/10,
                                               sim::Duration::millis(20));
            worker->enable_give_up(sim::Duration::millis(40));
            worker->reseed_jitter(seed ^ (std::uint64_t(t) << 32) ^
                                  std::uint64_t(w));
          }
        }
      }
    }
    cl.start_straggler_detection(/*threads=*/10, sim::Duration::millis(1));
    // Chaos windows are packet-fidelity regions: fluid streams
    // re-materialise as real frames for each fault's active window.
    if (fluidc) fluidc->observe(schedule);
  }

  if (mgr) {
    cl.sample_trace_counters();
    const jobs::MultiTenantRun run = mgr->run(/*gen_id=*/1, deadline);
    if (!schedule.empty()) cl.stop_straggler_detection();
    cl.sample_trace_counters();

    std::printf("%d-rack x %d-worker cluster, %zu tenant(s), isolation %s\n",
                racks, wpr, run.tenants.size(), isolation ? "on" : "off");
    bool all_finished = true;
    for (const jobs::TenantRun& tr : run.tenants) {
      if (tr.kind == jobs::TenantKind::kAllreduce) {
        int crashed = 0;
        for (int w = 0; w < spec.total_workers(); ++w) {
          const trioml::TrioMlWorker* worker = mgr->tenant_worker(tr.id, w);
          if (worker != nullptr && worker->crashes() > 0) ++crashed;
        }
        std::printf(
            "  tenant %u %s: %d/%d workers finished in %.2f us, "
            "digest %016llx\n",
            unsigned(tr.id), jobs::kind_name(tr.kind), tr.finished,
            spec.total_workers(), tr.duration_us(),
            static_cast<unsigned long long>(tr.digest()));
        // Crashed workers are expected casualties, as in the faulted
        // single-job path; every survivor must finish.
        if (tr.finished < spec.total_workers() - crashed) all_finished = false;
      } else if (tr.kind == jobs::TenantKind::kNetRpc) {
        const jobs::TenantSpec* ts = mgr->tenant_spec(tr.id);
        const jobs::NetRpcRun& nr = tr.netrpc;
        std::printf(
            "  tenant %u %s: %d/%d clients finished in %.2f us, "
            "digest %016llx\n",
            unsigned(tr.id), jobs::kind_name(tr.kind), tr.finished,
            ts != nullptr ? int(ts->rpc_clients) : tr.finished,
            tr.duration_us(),
            static_cast<unsigned long long>(tr.digest()));
        std::printf(
            "    calls %llu (%llu degraded), gets %llu (%llu cached, "
            "%.0f%% hit), puts %llu\n",
            static_cast<unsigned long long>(nr.calls),
            static_cast<unsigned long long>(nr.degraded),
            static_cast<unsigned long long>(nr.gets),
            static_cast<unsigned long long>(nr.cached_gets),
            nr.gets > 0 ? 100.0 * double(nr.cached_gets) / double(nr.gets)
                        : 0.0,
            static_cast<unsigned long long>(nr.puts));
        if (nr.call_latency_us.count() > 0) {
          sim::Samples lat = nr.call_latency_us;  // percentile() sorts
          std::printf("    call latency: p50 %.2f us, p99 %.2f us\n",
                      lat.percentile(50), lat.percentile(99));
        }
        if (nr.get_hit_latency_us.count() > 0 &&
            nr.get_miss_latency_us.count() > 0) {
          std::printf("    GET latency: cache hit %.2f us vs miss %.2f us\n",
                      nr.get_hit_latency_us.mean(),
                      nr.get_miss_latency_us.mean());
        }
        if (netrpc::NetRpcApp* app = mgr->netrpc_app()) {
          std::printf(
              "    PFE counters: merged %llu, completed %llu, hit %llu, "
              "miss %llu, fill %llu, invalidate %llu, degraded %llu\n",
              static_cast<unsigned long long>(
                  app->counter_packets(tr.id, netrpc::kCtrMerged)),
              static_cast<unsigned long long>(
                  app->counter_packets(tr.id, netrpc::kCtrCompleted)),
              static_cast<unsigned long long>(
                  app->counter_packets(tr.id, netrpc::kCtrCacheHit)),
              static_cast<unsigned long long>(
                  app->counter_packets(tr.id, netrpc::kCtrCacheMiss)),
              static_cast<unsigned long long>(
                  app->counter_packets(tr.id, netrpc::kCtrCacheFill)),
              static_cast<unsigned long long>(
                  app->counter_packets(tr.id, netrpc::kCtrInvalidate)),
              static_cast<unsigned long long>(
                  app->counter_packets(tr.id, netrpc::kCtrDegraded)));
        }
        if (ts != nullptr && tr.finished < int(ts->rpc_clients)) {
          // A crashed client is an expected casualty under --faults, like
          // a crashed allreduce worker.
          int crashed = 0;
          for (int w = 0; w < spec.total_workers(); ++w) {
            const netrpc::RpcClient* c = mgr->tenant_rpc_client(tr.id, w);
            if (c != nullptr && c->crashed()) ++crashed;
          }
          if (tr.finished < int(ts->rpc_clients) - crashed) {
            all_finished = false;
          }
        }
      } else {
        const jobs::TenantSpec* ts = mgr->tenant_spec(tr.id);
        std::printf("  tenant %u %s: load %.2f background traffic\n",
                    unsigned(tr.id), jobs::kind_name(tr.kind),
                    ts != nullptr ? ts->load : 0.0);
      }
    }
    if (fluidc) {
      std::printf(
          "  fluid: %zu stream(s), %llu fluid bytes, %llu re-materialised "
          "frame(s), %llu transition(s), %llu fault window(s)\n",
          fluidc->num_streams(),
          static_cast<unsigned long long>(fluidc->fluid_bytes()),
          static_cast<unsigned long long>(fluidc->packet_frames()),
          static_cast<unsigned long long>(fluidc->transitions()),
          static_cast<unsigned long long>(fluidc->windows_observed()));
    }
    if (!schedule.empty()) {
      std::printf("  faults: %llu injected, fault log digest %016llx\n",
                  static_cast<unsigned long long>(injector.faults_injected()),
                  static_cast<unsigned long long>(injector.digest()));
      for (const auto& entry : injector.log()) {
        std::printf("    [%s] %s\n", entry.at.to_string().c_str(),
                    entry.what.c_str());
      }
    }
    if (!metrics_out.empty()) {
      if (!telem.metrics.write_json_file(metrics_out, cl.simulator().now())) {
        std::fprintf(stderr, "trio-run: cannot write %s\n",
                     metrics_out.c_str());
        return 1;
      }
      std::printf("  metrics: %s (%zu metrics)\n", metrics_out.c_str(),
                  telem.metrics.metric_count());
    }
    if (!trace_out.empty()) {
      if (!telem.tracer.write_json_file(trace_out)) {
        std::fprintf(stderr, "trio-run: cannot write %s\n", trace_out.c_str());
        return 1;
      }
      std::printf("  trace: %s (%zu events)\n", trace_out.c_str(),
                  telem.tracer.event_count());
    }
    if (!check_invariants(cl, mgr.get(), jobs_spec, injector,
                          !schedule.empty())) {
      all_finished = false;
    }
    return all_finished ? 0 : 1;
  }

  const auto grads = cluster::patterned_gradients(
      spec.total_workers(),
      std::size_t(blocks) * spec.grads_per_packet);
  cl.sample_trace_counters();
  const cluster::AllreduceRun run =
      cluster::run_allreduce(cl, grads, /*gen_id=*/1, deadline);
  if (!schedule.empty()) cl.stop_straggler_detection();
  cl.sample_trace_counters();

  std::printf("%d-rack x %d-worker cluster, %zu gradients/worker\n", racks,
              wpr, grads[0].size());
  std::printf("  finished workers: %d/%d in %s simulated time\n",
              run.finished, spec.total_workers(),
              cl.simulator().now().to_string().c_str());
  std::printf("  allreduce: %.2f us, %.2f Gbps aggregate goodput\n",
              run.duration_us(), run.goodput_gbps());
  for (int r = 0; r < racks; ++r) {
    std::printf("  rack%d: leaf blocks %llu, uplink frames %llu\n", r,
                static_cast<unsigned long long>(
                    cl.leaf_app(r).stats().blocks_completed),
                static_cast<unsigned long long>(
                    cl.fabric_link(r).a_to_b().frames_sent()));
  }
  std::printf("  spine: blocks %llu\n",
              static_cast<unsigned long long>(
                  cl.spine_app().stats().blocks_completed));
  int crashed_workers = 0;
  if (!schedule.empty()) {
    std::uint64_t retransmits = 0, exhausted = 0;
    for (int w = 0; w < spec.total_workers(); ++w) {
      retransmits += cl.worker(w).retransmissions();
      exhausted += cl.worker(w).retry_budget_exhausted();
      if (cl.worker(w).crashes() > 0) ++crashed_workers;
    }
    std::printf(
        "  faults: %llu injected, %llu recoveries, %d crashed worker(s)\n",
        static_cast<unsigned long long>(injector.faults_injected()),
        static_cast<unsigned long long>(injector.recoveries()),
        crashed_workers);
    std::printf("  recovery: %llu retransmits, %llu budgets exhausted\n",
                static_cast<unsigned long long>(retransmits),
                static_cast<unsigned long long>(exhausted));
    std::printf("  fault log digest: %016llx\n",
                static_cast<unsigned long long>(injector.digest()));
    for (const auto& entry : injector.log()) {
      std::printf("    [%s] %s\n", entry.at.to_string().c_str(),
                  entry.what.c_str());
    }
  }
  if (!metrics_out.empty()) {
    if (!telem.metrics.write_json_file(metrics_out, cl.simulator().now())) {
      std::fprintf(stderr, "trio-run: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("  metrics: %s (%zu metrics)\n", metrics_out.c_str(),
                telem.metrics.metric_count());
  }
  if (!trace_out.empty()) {
    if (!telem.tracer.write_json_file(trace_out)) {
      std::fprintf(stderr, "trio-run: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("  trace: %s (%zu events)\n", trace_out.c_str(),
                telem.tracer.event_count());
  }
  // Workers that crashed are expected casualties; every survivor must
  // have finished — and the cluster's runtime invariants must hold.
  const bool clean = check_invariants(cl, mgr.get(), jobs_spec, injector,
                                      !schedule.empty());
  return clean && run.finished >= spec.total_workers() - crashed_workers ? 0
                                                                         : 1;
}

net::Buffer make_frame(const std::string& kind) {
  std::vector<std::uint8_t> payload(100, 0x42);
  auto frame = net::build_udp_frame(
      {0x02, 0, 0, 0, 0, 1}, {0x02, 0, 0, 0, 0, 2},
      net::Ipv4Addr::from_string("192.0.2.1"),
      net::Ipv4Addr::from_string("198.51.100.1"), 4000, 4001, payload);
  if (kind == "arp") {
    frame.set_u16(12, 0x0806);
  } else if (kind == "opts") {
    frame.set_u8(net::UdpFrameLayout::kIpOff, 4 << 4 | 6);
  }
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string cluster_topo;
  std::string faults_path;
  std::string deadline_s;
  std::string jobs_path;
  bool netrpc_demo = false;
  bool fluid = false;
  bool isolation = true;
  int blocks = 8;
  int shards = 0;  // 0 = auto (hardware concurrency, capped by routers)
  std::uint64_t seed = 0;
  int packets = 1000;
  std::vector<std::string> mix = {"ip", "arp", "opts"};
  std::vector<std::uint64_t> counters;
  std::string metrics_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--packets" && i + 1 < argc) {
      packets = std::atoi(argv[++i]);
    } else if (arg == "--cluster" && i + 1 < argc) {
      cluster_topo = argv[++i];
    } else if (arg.rfind("--cluster=", 0) == 0) {
      cluster_topo = arg.substr(std::string("--cluster=").size());
    } else if (arg == "--blocks" && i + 1 < argc) {
      blocks = std::atoi(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + std::string("--shards=").size());
    } else if (arg == "--faults" && i + 1 < argc) {
      faults_path = argv[++i];
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_path = arg.substr(std::string("--faults=").size());
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + std::string("--seed=").size(),
                           nullptr, 0);
    } else if (arg == "--deadline" && i + 1 < argc) {
      deadline_s = argv[++i];
    } else if (arg.rfind("--deadline=", 0) == 0) {
      deadline_s = arg.substr(std::string("--deadline=").size());
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs_path = argv[++i];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs_path = arg.substr(std::string("--jobs=").size());
    } else if (arg == "--netrpc") {
      netrpc_demo = true;
    } else if (arg == "--fluid") {
      fluid = true;
    } else if (arg == "--no-isolation") {
      isolation = false;
    } else if (arg == "--mix" && i + 1 < argc) {
      mix.clear();
      std::stringstream ss(argv[++i]);
      std::string tok;
      while (std::getline(ss, tok, ',')) mix.push_back(tok);
    } else if (arg == "--counter" && i + 1 < argc) {
      counters.push_back(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }
  if (!cluster_topo.empty()) {
    return run_cluster(cluster_topo, blocks, shards, faults_path, seed,
                       deadline_s, jobs_path, netrpc_demo, fluid, isolation,
                       metrics_out, trace_out);
  }
  if (path.empty() || packets <= 0 || mix.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trio-run: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream src;
  src << in.rdbuf();

  std::shared_ptr<const microcode::CompiledProgram> program;
  try {
    program = microcode::compile(src.str());
  } catch (const microcode::CompileError& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return 1;
  }

  sim::Simulator sim;
  telemetry::Telemetry telem(!metrics_out.empty(), !trace_out.empty());
  trio::Router router(sim, trio::Calibration{}, 1, 4, telem);
  // Nexthop 0: out of port 1 (programs Forward(0) to use it).
  router.forwarding().add_nexthop(trio::NexthopUnicast{1, {}});
  std::uint64_t forwarded = 0;
  router.attach_port_sink(1, [&](net::PacketPtr) { ++forwarded; });
  router.pfe(0).set_program_factory(microcode::make_program_factory(program));

  for (int i = 0; i < packets; ++i) {
    router.receive(
        net::Packet::make(make_frame(mix[static_cast<std::size_t>(i) %
                                         mix.size()])),
        0);
  }
  sim.run();

  std::printf("ran %d packets through %s in %s simulated time\n", packets,
              path.c_str(), sim.now().to_string().c_str());
  std::printf("  forwarded:        %llu\n",
              static_cast<unsigned long long>(forwarded));
  std::printf("  consumed/dropped: %llu\n",
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(packets) - forwarded));
  std::printf("  PPE instructions: %llu (%.1f per packet)\n",
              static_cast<unsigned long long>(
                  router.pfe(0).instructions_issued()),
              static_cast<double>(router.pfe(0).instructions_issued()) /
                  packets);
  for (std::uint64_t word : counters) {
    auto& sms = router.pfe(0).sms();
    std::printf("  counter @%llu: %llu packets, %llu bytes\n",
                static_cast<unsigned long long>(word),
                static_cast<unsigned long long>(sms.peek_u64(word * 8)),
                static_cast<unsigned long long>(sms.peek_u64(word * 8 + 8)));
  }
  if (!metrics_out.empty()) {
    if (!telem.metrics.write_json_file(metrics_out, sim.now())) {
      std::fprintf(stderr, "trio-run: cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("  metrics: %s (%zu metrics)\n", metrics_out.c_str(),
                telem.metrics.metric_count());
  }
  if (!trace_out.empty()) {
    if (!telem.tracer.write_json_file(trace_out)) {
      std::fprintf(stderr, "trio-run: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("  trace: %s (%zu events)\n", trace_out.c_str(),
                telem.tracer.event_count());
  }
  return 0;
}
