# Empty compiler generated dependencies file for switchml_multipipe_test.
# This may be replaced when dependencies are built.
