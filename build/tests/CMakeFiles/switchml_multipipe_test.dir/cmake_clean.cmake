file(REMOVE_RECURSE
  "CMakeFiles/switchml_multipipe_test.dir/switchml_multipipe_test.cpp.o"
  "CMakeFiles/switchml_multipipe_test.dir/switchml_multipipe_test.cpp.o.d"
  "switchml_multipipe_test"
  "switchml_multipipe_test.pdb"
  "switchml_multipipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchml_multipipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
