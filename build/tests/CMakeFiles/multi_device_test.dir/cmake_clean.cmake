file(REMOVE_RECURSE
  "CMakeFiles/multi_device_test.dir/multi_device_test.cpp.o"
  "CMakeFiles/multi_device_test.dir/multi_device_test.cpp.o.d"
  "multi_device_test"
  "multi_device_test.pdb"
  "multi_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
