# Empty compiler generated dependencies file for multi_device_test.
# This may be replaced when dependencies are built.
