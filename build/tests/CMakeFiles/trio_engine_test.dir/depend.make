# Empty dependencies file for trio_engine_test.
# This may be replaced when dependencies are built.
