file(REMOVE_RECURSE
  "CMakeFiles/trio_engine_test.dir/trio_engine_test.cpp.o"
  "CMakeFiles/trio_engine_test.dir/trio_engine_test.cpp.o.d"
  "trio_engine_test"
  "trio_engine_test.pdb"
  "trio_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
