# Empty dependencies file for trio_hash_test.
# This may be replaced when dependencies are built.
