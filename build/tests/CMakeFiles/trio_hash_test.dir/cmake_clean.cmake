file(REMOVE_RECURSE
  "CMakeFiles/trio_hash_test.dir/trio_hash_test.cpp.o"
  "CMakeFiles/trio_hash_test.dir/trio_hash_test.cpp.o.d"
  "trio_hash_test"
  "trio_hash_test.pdb"
  "trio_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
