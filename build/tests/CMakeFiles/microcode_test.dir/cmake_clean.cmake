file(REMOVE_RECURSE
  "CMakeFiles/microcode_test.dir/microcode_test.cpp.o"
  "CMakeFiles/microcode_test.dir/microcode_test.cpp.o.d"
  "microcode_test"
  "microcode_test.pdb"
  "microcode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
