# Empty compiler generated dependencies file for trio_engine2_test.
# This may be replaced when dependencies are built.
