# Empty dependencies file for golden_programs_test.
# This may be replaced when dependencies are built.
