file(REMOVE_RECURSE
  "CMakeFiles/golden_programs_test.dir/golden_programs_test.cpp.o"
  "CMakeFiles/golden_programs_test.dir/golden_programs_test.cpp.o.d"
  "golden_programs_test"
  "golden_programs_test.pdb"
  "golden_programs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
