# Empty dependencies file for microcode_lang2_test.
# This may be replaced when dependencies are built.
