file(REMOVE_RECURSE
  "CMakeFiles/microcode_lang2_test.dir/microcode_lang2_test.cpp.o"
  "CMakeFiles/microcode_lang2_test.dir/microcode_lang2_test.cpp.o.d"
  "microcode_lang2_test"
  "microcode_lang2_test.pdb"
  "microcode_lang2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcode_lang2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
