file(REMOVE_RECURSE
  "CMakeFiles/advanced_straggler_test.dir/advanced_straggler_test.cpp.o"
  "CMakeFiles/advanced_straggler_test.dir/advanced_straggler_test.cpp.o.d"
  "advanced_straggler_test"
  "advanced_straggler_test.pdb"
  "advanced_straggler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_straggler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
