# Empty dependencies file for trioml_test.
# This may be replaced when dependencies are built.
