file(REMOVE_RECURSE
  "CMakeFiles/trioml_test.dir/trioml_test.cpp.o"
  "CMakeFiles/trioml_test.dir/trioml_test.cpp.o.d"
  "trioml_test"
  "trioml_test.pdb"
  "trioml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trioml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
