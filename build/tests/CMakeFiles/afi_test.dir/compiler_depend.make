# Empty compiler generated dependencies file for afi_test.
# This may be replaced when dependencies are built.
