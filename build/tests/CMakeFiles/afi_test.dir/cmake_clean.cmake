file(REMOVE_RECURSE
  "CMakeFiles/afi_test.dir/afi_test.cpp.o"
  "CMakeFiles/afi_test.dir/afi_test.cpp.o.d"
  "afi_test"
  "afi_test.pdb"
  "afi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
