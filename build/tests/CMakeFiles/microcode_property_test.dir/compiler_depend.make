# Empty compiler generated dependencies file for microcode_property_test.
# This may be replaced when dependencies are built.
