file(REMOVE_RECURSE
  "CMakeFiles/microcode_property_test.dir/microcode_property_test.cpp.o"
  "CMakeFiles/microcode_property_test.dir/microcode_property_test.cpp.o.d"
  "microcode_property_test"
  "microcode_property_test.pdb"
  "microcode_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcode_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
