file(REMOVE_RECURSE
  "CMakeFiles/block_cap_test.dir/block_cap_test.cpp.o"
  "CMakeFiles/block_cap_test.dir/block_cap_test.cpp.o.d"
  "block_cap_test"
  "block_cap_test.pdb"
  "block_cap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_cap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
