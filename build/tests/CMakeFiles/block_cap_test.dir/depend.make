# Empty dependencies file for block_cap_test.
# This may be replaced when dependencies are built.
