file(REMOVE_RECURSE
  "CMakeFiles/trainer_sweep_test.dir/trainer_sweep_test.cpp.o"
  "CMakeFiles/trainer_sweep_test.dir/trainer_sweep_test.cpp.o.d"
  "trainer_sweep_test"
  "trainer_sweep_test.pdb"
  "trainer_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
