# Empty compiler generated dependencies file for trainer_sweep_test.
# This may be replaced when dependencies are built.
