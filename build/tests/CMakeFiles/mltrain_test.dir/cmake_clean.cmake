file(REMOVE_RECURSE
  "CMakeFiles/mltrain_test.dir/mltrain_test.cpp.o"
  "CMakeFiles/mltrain_test.dir/mltrain_test.cpp.o.d"
  "mltrain_test"
  "mltrain_test.pdb"
  "mltrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mltrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
