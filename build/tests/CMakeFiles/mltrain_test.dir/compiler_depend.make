# Empty compiler generated dependencies file for mltrain_test.
# This may be replaced when dependencies are built.
