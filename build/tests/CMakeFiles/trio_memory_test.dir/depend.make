# Empty dependencies file for trio_memory_test.
# This may be replaced when dependencies are built.
