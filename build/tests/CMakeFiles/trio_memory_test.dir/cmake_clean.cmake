file(REMOVE_RECURSE
  "CMakeFiles/trio_memory_test.dir/trio_memory_test.cpp.o"
  "CMakeFiles/trio_memory_test.dir/trio_memory_test.cpp.o.d"
  "trio_memory_test"
  "trio_memory_test.pdb"
  "trio_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
