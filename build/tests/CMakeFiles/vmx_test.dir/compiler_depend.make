# Empty compiler generated dependencies file for vmx_test.
# This may be replaced when dependencies are built.
