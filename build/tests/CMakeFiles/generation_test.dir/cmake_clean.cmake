file(REMOVE_RECURSE
  "CMakeFiles/generation_test.dir/generation_test.cpp.o"
  "CMakeFiles/generation_test.dir/generation_test.cpp.o.d"
  "generation_test"
  "generation_test.pdb"
  "generation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
