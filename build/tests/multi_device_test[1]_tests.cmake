add_test([=[MultiDevice.TwoRouterHierarchyAggregatesAndMulticasts]=]  /root/repo/build/tests/multi_device_test [==[--gtest_filter=MultiDevice.TwoRouterHierarchyAggregatesAndMulticasts]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MultiDevice.TwoRouterHierarchyAggregatesAndMulticasts]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  multi_device_test_TESTS MultiDevice.TwoRouterHierarchyAggregatesAndMulticasts)
