# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/trio_memory_test[1]_include.cmake")
include("/root/repo/build/tests/trio_hash_test[1]_include.cmake")
include("/root/repo/build/tests/trio_engine_test[1]_include.cmake")
include("/root/repo/build/tests/microcode_test[1]_include.cmake")
include("/root/repo/build/tests/trioml_test[1]_include.cmake")
include("/root/repo/build/tests/pisa_test[1]_include.cmake")
include("/root/repo/build/tests/mltrain_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/microcode_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/microcode_lang2_test[1]_include.cmake")
include("/root/repo/build/tests/advanced_straggler_test[1]_include.cmake")
include("/root/repo/build/tests/afi_test[1]_include.cmake")
include("/root/repo/build/tests/switchml_multipipe_test[1]_include.cmake")
include("/root/repo/build/tests/block_cap_test[1]_include.cmake")
include("/root/repo/build/tests/trio_engine2_test[1]_include.cmake")
include("/root/repo/build/tests/vmx_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/multi_device_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/generation_test[1]_include.cmake")
include("/root/repo/build/tests/golden_programs_test[1]_include.cmake")
