file(REMOVE_RECURSE
  "CMakeFiles/fig16_window_sweep.dir/fig16_window_sweep.cpp.o"
  "CMakeFiles/fig16_window_sweep.dir/fig16_window_sweep.cpp.o.d"
  "fig16_window_sweep"
  "fig16_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
