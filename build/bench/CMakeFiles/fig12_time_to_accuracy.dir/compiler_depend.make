# Empty compiler generated dependencies file for fig12_time_to_accuracy.
# This may be replaced when dependencies are built.
