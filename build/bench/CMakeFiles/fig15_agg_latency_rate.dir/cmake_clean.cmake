file(REMOVE_RECURSE
  "CMakeFiles/fig15_agg_latency_rate.dir/fig15_agg_latency_rate.cpp.o"
  "CMakeFiles/fig15_agg_latency_rate.dir/fig15_agg_latency_rate.cpp.o.d"
  "fig15_agg_latency_rate"
  "fig15_agg_latency_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_agg_latency_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
