# Empty dependencies file for fig15_agg_latency_rate.
# This may be replaced when dependencies are built.
