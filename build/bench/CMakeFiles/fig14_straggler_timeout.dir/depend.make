# Empty dependencies file for fig14_straggler_timeout.
# This may be replaced when dependencies are built.
