file(REMOVE_RECURSE
  "CMakeFiles/fig14_straggler_timeout.dir/fig14_straggler_timeout.cpp.o"
  "CMakeFiles/fig14_straggler_timeout.dir/fig14_straggler_timeout.cpp.o.d"
  "fig14_straggler_timeout"
  "fig14_straggler_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_straggler_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
