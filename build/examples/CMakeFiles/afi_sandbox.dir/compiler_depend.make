# Empty compiler generated dependencies file for afi_sandbox.
# This may be replaced when dependencies are built.
