file(REMOVE_RECURSE
  "CMakeFiles/afi_sandbox.dir/afi_sandbox.cpp.o"
  "CMakeFiles/afi_sandbox.dir/afi_sandbox.cpp.o.d"
  "afi_sandbox"
  "afi_sandbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/afi_sandbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
