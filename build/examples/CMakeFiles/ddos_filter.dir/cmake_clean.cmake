file(REMOVE_RECURSE
  "CMakeFiles/ddos_filter.dir/ddos_filter.cpp.o"
  "CMakeFiles/ddos_filter.dir/ddos_filter.cpp.o.d"
  "ddos_filter"
  "ddos_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
