# Empty dependencies file for ddos_filter.
# This may be replaced when dependencies are built.
