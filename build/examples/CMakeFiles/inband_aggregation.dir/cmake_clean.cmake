file(REMOVE_RECURSE
  "CMakeFiles/inband_aggregation.dir/inband_aggregation.cpp.o"
  "CMakeFiles/inband_aggregation.dir/inband_aggregation.cpp.o.d"
  "inband_aggregation"
  "inband_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inband_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
