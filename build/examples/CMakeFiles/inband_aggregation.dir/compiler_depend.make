# Empty compiler generated dependencies file for inband_aggregation.
# This may be replaced when dependencies are built.
