# Empty dependencies file for trio-run.
# This may be replaced when dependencies are built.
