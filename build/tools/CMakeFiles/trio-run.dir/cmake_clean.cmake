file(REMOVE_RECURSE
  "CMakeFiles/trio-run.dir/trio_run.cpp.o"
  "CMakeFiles/trio-run.dir/trio_run.cpp.o.d"
  "trio-run"
  "trio-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
