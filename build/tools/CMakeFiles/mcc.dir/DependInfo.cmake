
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/mcc.cpp" "tools/CMakeFiles/mcc.dir/mcc.cpp.o" "gcc" "tools/CMakeFiles/mcc.dir/mcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microcode/CMakeFiles/trio_microcode.dir/DependInfo.cmake"
  "/root/repo/build/src/trio/CMakeFiles/trio_chipset.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
