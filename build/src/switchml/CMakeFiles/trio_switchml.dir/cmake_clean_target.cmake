file(REMOVE_RECURSE
  "libtrio_switchml.a"
)
