# Empty compiler generated dependencies file for trio_switchml.
# This may be replaced when dependencies are built.
