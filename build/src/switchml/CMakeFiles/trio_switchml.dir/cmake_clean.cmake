file(REMOVE_RECURSE
  "CMakeFiles/trio_switchml.dir/switchml.cpp.o"
  "CMakeFiles/trio_switchml.dir/switchml.cpp.o.d"
  "libtrio_switchml.a"
  "libtrio_switchml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_switchml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
