file(REMOVE_RECURSE
  "libtrio_net.a"
)
