file(REMOVE_RECURSE
  "CMakeFiles/trio_net.dir/buffer.cpp.o"
  "CMakeFiles/trio_net.dir/buffer.cpp.o.d"
  "CMakeFiles/trio_net.dir/headers.cpp.o"
  "CMakeFiles/trio_net.dir/headers.cpp.o.d"
  "CMakeFiles/trio_net.dir/link.cpp.o"
  "CMakeFiles/trio_net.dir/link.cpp.o.d"
  "CMakeFiles/trio_net.dir/packet.cpp.o"
  "CMakeFiles/trio_net.dir/packet.cpp.o.d"
  "libtrio_net.a"
  "libtrio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
