# Empty dependencies file for trio_net.
# This may be replaced when dependencies are built.
