file(REMOVE_RECURSE
  "CMakeFiles/trio_microcode.dir/bitfield.cpp.o"
  "CMakeFiles/trio_microcode.dir/bitfield.cpp.o.d"
  "CMakeFiles/trio_microcode.dir/compiler.cpp.o"
  "CMakeFiles/trio_microcode.dir/compiler.cpp.o.d"
  "CMakeFiles/trio_microcode.dir/interpreter.cpp.o"
  "CMakeFiles/trio_microcode.dir/interpreter.cpp.o.d"
  "CMakeFiles/trio_microcode.dir/lexer.cpp.o"
  "CMakeFiles/trio_microcode.dir/lexer.cpp.o.d"
  "CMakeFiles/trio_microcode.dir/parser.cpp.o"
  "CMakeFiles/trio_microcode.dir/parser.cpp.o.d"
  "CMakeFiles/trio_microcode.dir/vmx.cpp.o"
  "CMakeFiles/trio_microcode.dir/vmx.cpp.o.d"
  "libtrio_microcode.a"
  "libtrio_microcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_microcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
