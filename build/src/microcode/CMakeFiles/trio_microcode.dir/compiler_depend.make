# Empty compiler generated dependencies file for trio_microcode.
# This may be replaced when dependencies are built.
