
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microcode/bitfield.cpp" "src/microcode/CMakeFiles/trio_microcode.dir/bitfield.cpp.o" "gcc" "src/microcode/CMakeFiles/trio_microcode.dir/bitfield.cpp.o.d"
  "/root/repo/src/microcode/compiler.cpp" "src/microcode/CMakeFiles/trio_microcode.dir/compiler.cpp.o" "gcc" "src/microcode/CMakeFiles/trio_microcode.dir/compiler.cpp.o.d"
  "/root/repo/src/microcode/interpreter.cpp" "src/microcode/CMakeFiles/trio_microcode.dir/interpreter.cpp.o" "gcc" "src/microcode/CMakeFiles/trio_microcode.dir/interpreter.cpp.o.d"
  "/root/repo/src/microcode/lexer.cpp" "src/microcode/CMakeFiles/trio_microcode.dir/lexer.cpp.o" "gcc" "src/microcode/CMakeFiles/trio_microcode.dir/lexer.cpp.o.d"
  "/root/repo/src/microcode/parser.cpp" "src/microcode/CMakeFiles/trio_microcode.dir/parser.cpp.o" "gcc" "src/microcode/CMakeFiles/trio_microcode.dir/parser.cpp.o.d"
  "/root/repo/src/microcode/vmx.cpp" "src/microcode/CMakeFiles/trio_microcode.dir/vmx.cpp.o" "gcc" "src/microcode/CMakeFiles/trio_microcode.dir/vmx.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trio/CMakeFiles/trio_chipset.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
