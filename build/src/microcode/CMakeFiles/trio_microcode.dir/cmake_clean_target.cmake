file(REMOVE_RECURSE
  "libtrio_microcode.a"
)
