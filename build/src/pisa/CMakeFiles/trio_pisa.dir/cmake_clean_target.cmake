file(REMOVE_RECURSE
  "libtrio_pisa.a"
)
