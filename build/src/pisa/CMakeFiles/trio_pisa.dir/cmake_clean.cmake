file(REMOVE_RECURSE
  "CMakeFiles/trio_pisa.dir/pipeline.cpp.o"
  "CMakeFiles/trio_pisa.dir/pipeline.cpp.o.d"
  "CMakeFiles/trio_pisa.dir/switch.cpp.o"
  "CMakeFiles/trio_pisa.dir/switch.cpp.o.d"
  "libtrio_pisa.a"
  "libtrio_pisa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_pisa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
