# Empty compiler generated dependencies file for trio_pisa.
# This may be replaced when dependencies are built.
