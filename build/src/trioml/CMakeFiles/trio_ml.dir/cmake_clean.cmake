file(REMOVE_RECURSE
  "CMakeFiles/trio_ml.dir/advanced_straggler.cpp.o"
  "CMakeFiles/trio_ml.dir/advanced_straggler.cpp.o.d"
  "CMakeFiles/trio_ml.dir/aggregator.cpp.o"
  "CMakeFiles/trio_ml.dir/aggregator.cpp.o.d"
  "CMakeFiles/trio_ml.dir/app.cpp.o"
  "CMakeFiles/trio_ml.dir/app.cpp.o.d"
  "CMakeFiles/trio_ml.dir/host.cpp.o"
  "CMakeFiles/trio_ml.dir/host.cpp.o.d"
  "CMakeFiles/trio_ml.dir/records.cpp.o"
  "CMakeFiles/trio_ml.dir/records.cpp.o.d"
  "CMakeFiles/trio_ml.dir/result_builder.cpp.o"
  "CMakeFiles/trio_ml.dir/result_builder.cpp.o.d"
  "CMakeFiles/trio_ml.dir/straggler.cpp.o"
  "CMakeFiles/trio_ml.dir/straggler.cpp.o.d"
  "CMakeFiles/trio_ml.dir/testbed.cpp.o"
  "CMakeFiles/trio_ml.dir/testbed.cpp.o.d"
  "CMakeFiles/trio_ml.dir/wire_format.cpp.o"
  "CMakeFiles/trio_ml.dir/wire_format.cpp.o.d"
  "libtrio_ml.a"
  "libtrio_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
