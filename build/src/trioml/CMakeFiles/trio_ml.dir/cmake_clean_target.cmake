file(REMOVE_RECURSE
  "libtrio_ml.a"
)
