
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trioml/advanced_straggler.cpp" "src/trioml/CMakeFiles/trio_ml.dir/advanced_straggler.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/advanced_straggler.cpp.o.d"
  "/root/repo/src/trioml/aggregator.cpp" "src/trioml/CMakeFiles/trio_ml.dir/aggregator.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/aggregator.cpp.o.d"
  "/root/repo/src/trioml/app.cpp" "src/trioml/CMakeFiles/trio_ml.dir/app.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/app.cpp.o.d"
  "/root/repo/src/trioml/host.cpp" "src/trioml/CMakeFiles/trio_ml.dir/host.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/host.cpp.o.d"
  "/root/repo/src/trioml/records.cpp" "src/trioml/CMakeFiles/trio_ml.dir/records.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/records.cpp.o.d"
  "/root/repo/src/trioml/result_builder.cpp" "src/trioml/CMakeFiles/trio_ml.dir/result_builder.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/result_builder.cpp.o.d"
  "/root/repo/src/trioml/straggler.cpp" "src/trioml/CMakeFiles/trio_ml.dir/straggler.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/straggler.cpp.o.d"
  "/root/repo/src/trioml/testbed.cpp" "src/trioml/CMakeFiles/trio_ml.dir/testbed.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/testbed.cpp.o.d"
  "/root/repo/src/trioml/wire_format.cpp" "src/trioml/CMakeFiles/trio_ml.dir/wire_format.cpp.o" "gcc" "src/trioml/CMakeFiles/trio_ml.dir/wire_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trio/CMakeFiles/trio_chipset.dir/DependInfo.cmake"
  "/root/repo/build/src/microcode/CMakeFiles/trio_microcode.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
