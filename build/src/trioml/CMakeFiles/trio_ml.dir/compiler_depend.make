# Empty compiler generated dependencies file for trio_ml.
# This may be replaced when dependencies are built.
