# Empty compiler generated dependencies file for trio_chipset.
# This may be replaced when dependencies are built.
