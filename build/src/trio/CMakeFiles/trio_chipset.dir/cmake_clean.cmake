file(REMOVE_RECURSE
  "CMakeFiles/trio_chipset.dir/afi.cpp.o"
  "CMakeFiles/trio_chipset.dir/afi.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/calibration.cpp.o"
  "CMakeFiles/trio_chipset.dir/calibration.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/fabric.cpp.o"
  "CMakeFiles/trio_chipset.dir/fabric.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/forwarding.cpp.o"
  "CMakeFiles/trio_chipset.dir/forwarding.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/hash.cpp.o"
  "CMakeFiles/trio_chipset.dir/hash.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/hash_table.cpp.o"
  "CMakeFiles/trio_chipset.dir/hash_table.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/pfe.cpp.o"
  "CMakeFiles/trio_chipset.dir/pfe.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/ppe.cpp.o"
  "CMakeFiles/trio_chipset.dir/ppe.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/reorder.cpp.o"
  "CMakeFiles/trio_chipset.dir/reorder.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/router.cpp.o"
  "CMakeFiles/trio_chipset.dir/router.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/sms.cpp.o"
  "CMakeFiles/trio_chipset.dir/sms.cpp.o.d"
  "CMakeFiles/trio_chipset.dir/timer.cpp.o"
  "CMakeFiles/trio_chipset.dir/timer.cpp.o.d"
  "libtrio_chipset.a"
  "libtrio_chipset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_chipset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
