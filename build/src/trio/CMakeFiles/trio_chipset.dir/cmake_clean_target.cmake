file(REMOVE_RECURSE
  "libtrio_chipset.a"
)
