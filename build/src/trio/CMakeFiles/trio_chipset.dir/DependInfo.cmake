
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trio/afi.cpp" "src/trio/CMakeFiles/trio_chipset.dir/afi.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/afi.cpp.o.d"
  "/root/repo/src/trio/calibration.cpp" "src/trio/CMakeFiles/trio_chipset.dir/calibration.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/calibration.cpp.o.d"
  "/root/repo/src/trio/fabric.cpp" "src/trio/CMakeFiles/trio_chipset.dir/fabric.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/fabric.cpp.o.d"
  "/root/repo/src/trio/forwarding.cpp" "src/trio/CMakeFiles/trio_chipset.dir/forwarding.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/forwarding.cpp.o.d"
  "/root/repo/src/trio/hash.cpp" "src/trio/CMakeFiles/trio_chipset.dir/hash.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/hash.cpp.o.d"
  "/root/repo/src/trio/hash_table.cpp" "src/trio/CMakeFiles/trio_chipset.dir/hash_table.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/hash_table.cpp.o.d"
  "/root/repo/src/trio/pfe.cpp" "src/trio/CMakeFiles/trio_chipset.dir/pfe.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/pfe.cpp.o.d"
  "/root/repo/src/trio/ppe.cpp" "src/trio/CMakeFiles/trio_chipset.dir/ppe.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/ppe.cpp.o.d"
  "/root/repo/src/trio/reorder.cpp" "src/trio/CMakeFiles/trio_chipset.dir/reorder.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/reorder.cpp.o.d"
  "/root/repo/src/trio/router.cpp" "src/trio/CMakeFiles/trio_chipset.dir/router.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/router.cpp.o.d"
  "/root/repo/src/trio/sms.cpp" "src/trio/CMakeFiles/trio_chipset.dir/sms.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/sms.cpp.o.d"
  "/root/repo/src/trio/timer.cpp" "src/trio/CMakeFiles/trio_chipset.dir/timer.cpp.o" "gcc" "src/trio/CMakeFiles/trio_chipset.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/trio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trio_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
