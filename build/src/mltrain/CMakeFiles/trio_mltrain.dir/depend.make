# Empty dependencies file for trio_mltrain.
# This may be replaced when dependencies are built.
