file(REMOVE_RECURSE
  "libtrio_mltrain.a"
)
