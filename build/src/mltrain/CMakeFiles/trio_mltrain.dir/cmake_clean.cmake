file(REMOVE_RECURSE
  "CMakeFiles/trio_mltrain.dir/model.cpp.o"
  "CMakeFiles/trio_mltrain.dir/model.cpp.o.d"
  "CMakeFiles/trio_mltrain.dir/straggler_gen.cpp.o"
  "CMakeFiles/trio_mltrain.dir/straggler_gen.cpp.o.d"
  "CMakeFiles/trio_mltrain.dir/trainer.cpp.o"
  "CMakeFiles/trio_mltrain.dir/trainer.cpp.o.d"
  "libtrio_mltrain.a"
  "libtrio_mltrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_mltrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
