
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mltrain/model.cpp" "src/mltrain/CMakeFiles/trio_mltrain.dir/model.cpp.o" "gcc" "src/mltrain/CMakeFiles/trio_mltrain.dir/model.cpp.o.d"
  "/root/repo/src/mltrain/straggler_gen.cpp" "src/mltrain/CMakeFiles/trio_mltrain.dir/straggler_gen.cpp.o" "gcc" "src/mltrain/CMakeFiles/trio_mltrain.dir/straggler_gen.cpp.o.d"
  "/root/repo/src/mltrain/trainer.cpp" "src/mltrain/CMakeFiles/trio_mltrain.dir/trainer.cpp.o" "gcc" "src/mltrain/CMakeFiles/trio_mltrain.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/trio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
