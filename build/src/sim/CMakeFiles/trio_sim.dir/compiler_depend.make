# Empty compiler generated dependencies file for trio_sim.
# This may be replaced when dependencies are built.
