file(REMOVE_RECURSE
  "CMakeFiles/trio_sim.dir/event_queue.cpp.o"
  "CMakeFiles/trio_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/trio_sim.dir/logging.cpp.o"
  "CMakeFiles/trio_sim.dir/logging.cpp.o.d"
  "CMakeFiles/trio_sim.dir/random.cpp.o"
  "CMakeFiles/trio_sim.dir/random.cpp.o.d"
  "CMakeFiles/trio_sim.dir/simulator.cpp.o"
  "CMakeFiles/trio_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/trio_sim.dir/stats.cpp.o"
  "CMakeFiles/trio_sim.dir/stats.cpp.o.d"
  "CMakeFiles/trio_sim.dir/time.cpp.o"
  "CMakeFiles/trio_sim.dir/time.cpp.o.d"
  "libtrio_sim.a"
  "libtrio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
