file(REMOVE_RECURSE
  "libtrio_sim.a"
)
